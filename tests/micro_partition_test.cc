// Differential suite for the micro-partition storage backend: on randomized
// schemas, fact tables, and clusterings, MicroPartitionStore must answer
// every grid query bit-identically to PackedLayout (zone-map pruning is
// conservative metadata, never a result change), its partition directory
// must satisfy the tiling/immutability invariants, pruning must be sound
// against a brute-force cell walk, and the partition-granularity rewrite
// pricing must reduce to the shared permutation structure.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cost/edge_model.h"
#include "curves/row_major.h"
#include "hierarchy/hierarchy.h"
#include "hierarchy/star_schema.h"
#include "lattice/grid_query.h"
#include "lattice/lattice.h"
#include "lattice/workload.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "recluster/movement.h"
#include "storage/backend.h"
#include "storage/executor.h"
#include "storage/micro_partition.h"
#include "storage/pager.h"
#include "storage/query_engine.h"
#include "util/rng.h"

namespace snakes {
namespace {

/// Random 2-3 dimensional schema with 1-2 levels and fanouts 2-4 per
/// dimension — the same family the parser/service fuzzers draw from.
std::shared_ptr<const StarSchema> RandomSchema(Rng* rng) {
  const int num_dims = 2 + static_cast<int>(rng->Below(2));
  std::vector<Hierarchy> hierarchies;
  for (int d = 0; d < num_dims; ++d) {
    const int levels = 1 + static_cast<int>(rng->Below(2));
    std::vector<uint64_t> fanouts;
    for (int l = 0; l < levels; ++l) fanouts.push_back(2 + rng->Below(3));
    hierarchies.push_back(
        Hierarchy::Uniform("dim" + std::to_string(d), fanouts).value());
  }
  return std::make_shared<StarSchema>(
      StarSchema::Make("rand", std::move(hierarchies)).value());
}

/// Sparse random facts: ~70% of cells populated with 1-3 records.
std::shared_ptr<const FactTable> RandomFacts(
    const std::shared_ptr<const StarSchema>& schema, Rng* rng) {
  auto facts = std::make_shared<FactTable>(schema);
  for (CellId id = 0; id < schema->num_cells(); ++id) {
    if (!rng->Chance(0.7)) continue;
    const uint64_t records = 1 + rng->Below(3);
    for (uint64_t r = 0; r < records; ++r) {
      facts->AddRecord(schema->Unflatten(id), rng->NextDouble());
    }
  }
  return facts;
}

/// A random row-major clustering of `schema`.
std::shared_ptr<const Linearization> RandomOrder(
    const std::shared_ptr<const StarSchema>& schema, Rng* rng) {
  auto orders = AllRowMajorOrders(schema);
  return std::shared_ptr<const Linearization>(
      std::move(orders[rng->Below(orders.size())]));
}

/// Small pages and a tiny partition target so even fuzz-sized grids produce
/// multi-page cells and a multi-partition directory.
StorageConfig SmallConfig() {
  StorageConfig config;
  config.page_size_bytes = 64;
  config.record_size_bytes = 30;
  config.micro_partition_pages = 2;
  return config;
}

void ExpectSameIo(const QueryIo& a, const QueryIo& b, const std::string& ctx) {
  EXPECT_EQ(a.records, b.records) << ctx;
  EXPECT_EQ(a.pages, b.pages) << ctx;
  EXPECT_EQ(a.seeks, b.seeks) << ctx;
  EXPECT_EQ(a.min_pages, b.min_pages) << ctx;
}

class MicroPartitionDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(MicroPartitionDifferentialTest, QueryAnswersBitIdenticalAcrossBackends) {
  Rng rng(0xA11CE + static_cast<uint64_t>(GetParam()) * 7919);
  const auto schema = RandomSchema(&rng);
  const auto facts = RandomFacts(schema, &rng);
  const auto lin = RandomOrder(schema, &rng);

  const auto packed = MakeStorageBackend(StorageBackendKind::kPacked, lin,
                                         facts, SmallConfig())
                          .value();
  const auto micro = MakeStorageBackend(StorageBackendKind::kMicroPartition,
                                        lin, facts, SmallConfig())
                         .value();
  ASSERT_EQ(packed->kind(), StorageBackendKind::kPacked);
  ASSERT_EQ(micro->kind(), StorageBackendKind::kMicroPartition);
  EXPECT_EQ(packed->num_pages(), micro->num_pages());

  const QueryEngine packed_engine(*packed);
  const QueryEngine micro_engine(*micro);
  const IoSimulator packed_sim(*packed);
  const IoSimulator micro_sim(*micro);

  const QueryClassLattice lat(*schema);
  for (uint64_t c = 0; c < lat.size(); ++c) {
    const QueryClass cls = lat.ClassAt(c);
    const uint64_t queries = NumQueriesInClass(*schema, cls);
    for (uint64_t q = 0; q < queries; ++q) {
      const GridQuery query = QueryAt(*schema, cls, q);
      const std::string ctx = lin->name() + " " + query.ToString();
      const QueryAnswer a = packed_engine.Execute(query);
      const QueryAnswer b = micro_engine.Execute(query);
      EXPECT_EQ(a.count, b.count) << ctx;
      EXPECT_EQ(a.sum, b.sum) << ctx;  // bit pattern, no epsilon
      ExpectSameIo(a.io, b.io, ctx);
      ExpectSameIo(packed_sim.Measure(query), micro_sim.Measure(query), ctx);
      // The pruned run path agrees with the reference cell walk too.
      ExpectSameIo(micro_sim.Measure(query), micro_sim.MeasureCellWalk(query),
                   ctx);
    }
    // Class aggregates (the cost pipeline's inputs) match field by field.
    const ClassIoStats pa = packed_sim.MeasureClass(cls);
    const ClassIoStats mb = micro_sim.MeasureClass(cls);
    EXPECT_EQ(pa.num_queries, mb.num_queries) << cls.ToString();
    EXPECT_EQ(pa.num_nonempty, mb.num_nonempty) << cls.ToString();
    EXPECT_EQ(pa.total_pages, mb.total_pages) << cls.ToString();
    EXPECT_EQ(pa.total_seeks, mb.total_seeks) << cls.ToString();
    EXPECT_EQ(pa.total_normalized, mb.total_normalized) << cls.ToString();
  }
}

TEST_P(MicroPartitionDifferentialTest, PartitionDirectoryInvariants) {
  Rng rng(0xD1CE + static_cast<uint64_t>(GetParam()) * 104729);
  const auto schema = RandomSchema(&rng);
  const auto facts = RandomFacts(schema, &rng);
  const auto lin = RandomOrder(schema, &rng);
  const StorageConfig config = SmallConfig();
  const auto store = MicroPartitionStore::Pack(lin, facts, config).value();

  const uint64_t n = schema->num_cells();
  ASSERT_GT(store.num_partitions(), 0u);

  uint64_t next_rank = 0;
  uint64_t last_data_page = 0;
  bool seen_data = false;
  for (uint64_t p = 0; p < store.num_partitions(); ++p) {
    const auto& part = store.partition(p);
    // Partitions tile the rank space in order with no gaps or overlaps.
    EXPECT_EQ(part.first_rank, next_rank);
    EXPECT_GT(part.num_ranks, 0u);
    next_rank = part.end_rank();

    // Every rank resolves back to its partition.
    EXPECT_EQ(store.PartitionOf(part.first_rank), p);
    EXPECT_EQ(store.PartitionOf(part.end_rank() - 1), p);

    if (part.records > 0) {
      // Page ranges are disjoint and ascending: immutable partitions never
      // share a page.
      if (seen_data) {
        EXPECT_GT(part.first_page, last_data_page);
      }
      EXPECT_GE(part.last_page, part.first_page);
      last_data_page = part.last_page;
      seen_data = true;

      // Non-final partitions close only after reaching the size target.
      if (p + 1 < store.num_partitions()) {
        EXPECT_GE(part.num_data_pages(), config.micro_partition_pages);
      }

      // The zone map is the exact min/max over non-empty member cells.
      CellCoord lo, hi;
      bool first = true;
      for (uint64_t r = part.first_rank; r < part.end_rank(); ++r) {
        if (store.CellRecords(r) == 0) continue;
        const CellCoord coord = lin->CellAt(r);
        if (first) {
          lo = coord;
          hi = coord;
          first = false;
          continue;
        }
        for (size_t d = 0; d < coord.size(); ++d) {
          if (coord[d] < lo[d]) lo[d] = coord[d];
          if (coord[d] > hi[d]) hi[d] = coord[d];
        }
      }
      ASSERT_FALSE(first);
      EXPECT_EQ(part.zone_lo, lo);
      EXPECT_EQ(part.zone_hi, hi);

      // Records in the partition reconcile with the range accelerator.
      EXPECT_EQ(part.records,
                store.MeasureRange(part.first_rank, part.num_ranks).records);
    }
  }
  EXPECT_EQ(next_rank, n);
}

TEST_P(MicroPartitionDifferentialTest, PruningIsSoundAgainstBruteForce) {
  Rng rng(0xBADA + static_cast<uint64_t>(GetParam()) * 7919);
  const auto schema = RandomSchema(&rng);
  const auto facts = RandomFacts(schema, &rng);
  const auto lin = RandomOrder(schema, &rng);
  const auto store = MicroPartitionStore::Pack(lin, facts, SmallConfig())
                         .value();

  const QueryClassLattice lat(*schema);
  const Workload mu = Workload::Uniform(lat);
  for (int trial = 0; trial < 32; ++trial) {
    const QueryClass cls = mu.Sample(&rng);
    const GridQuery query = SampleQuery(*schema, cls, &rng);
    const CellBox box = BoxOf(*schema, query);

    uint64_t scanned = 0, pruned = 0;
    for (uint64_t p = 0; p < store.num_partitions(); ++p) {
      const auto& part = store.partition(p);
      bool zone_overlaps = part.records > 0;
      for (size_t d = 0; zone_overlaps && d < box.lo.size(); ++d) {
        zone_overlaps = part.zone_lo[d] < box.hi[d] &&
                        part.zone_hi[d] >= box.lo[d];
      }
      zone_overlaps ? ++scanned : ++pruned;

      // Soundness: a pruned partition holds NO non-empty cell of the box.
      if (!zone_overlaps) {
        for (uint64_t r = part.first_rank; r < part.end_rank(); ++r) {
          if (store.CellRecords(r) == 0) continue;
          EXPECT_FALSE(box.Contains(lin->CellAt(r)))
              << "partition " << p << " pruned but holds in-box rank " << r;
        }
      }
    }

    const PruneStats stats = store.PruneBox(box);
    EXPECT_EQ(stats.partitions, store.num_partitions());
    EXPECT_EQ(stats.scanned, scanned);
    EXPECT_EQ(stats.pruned, pruned);
    EXPECT_EQ(stats.scanned + stats.pruned, stats.partitions);
  }
}

TEST_P(MicroPartitionDifferentialTest, MeasurePruningIsSoundPerRecord) {
  // Record-level soundness of the measure zone maps: the test keeps its own
  // list of every (coord, measure) record it inserts, so a partition pruned
  // by PruneBoxMeasure can be checked record by record — it must hold NO
  // record inside the query box whose measure lies in the bounds.
  Rng rng(0x5EED + static_cast<uint64_t>(GetParam()) * 7919);
  const auto schema = RandomSchema(&rng);
  auto facts = std::make_shared<FactTable>(schema);
  std::vector<std::pair<CellCoord, double>> records;
  for (CellId id = 0; id < schema->num_cells(); ++id) {
    if (!rng.Chance(0.7)) continue;
    const uint64_t n = 1 + rng.Below(3);
    for (uint64_t r = 0; r < n; ++r) {
      const CellCoord coord = schema->Unflatten(id);
      const double measure = rng.NextDouble() * 100.0;
      facts->AddRecord(coord, measure);
      records.emplace_back(coord, measure);
    }
  }
  ASSERT_FALSE(records.empty());
  const auto lin = RandomOrder(schema, &rng);
  const auto store =
      MicroPartitionStore::Pack(lin, facts, SmallConfig()).value();

  // The per-partition measure envelope is the exact record-level min/max.
  for (uint64_t p = 0; p < store.num_partitions(); ++p) {
    const auto& part = store.partition(p);
    if (part.records == 0) continue;
    double lo = 0.0, hi = 0.0;
    bool first = true;
    uint64_t count = 0;
    for (const auto& [coord, measure] : records) {
      const uint64_t rank = lin->RankOf(coord);
      if (rank < part.first_rank || rank >= part.end_rank()) continue;
      ++count;
      if (first || measure < lo) lo = measure;
      if (first || measure > hi) hi = measure;
      first = false;
    }
    ASSERT_FALSE(first) << "partition " << p << " claims records it lacks";
    EXPECT_EQ(part.records, count);
    EXPECT_EQ(part.measure_lo, lo) << "partition " << p;
    EXPECT_EQ(part.measure_hi, hi) << "partition " << p;
  }

  const QueryClassLattice lat(*schema);
  const Workload mu = Workload::Uniform(lat);
  for (int trial = 0; trial < 32; ++trial) {
    const QueryClass cls = mu.Sample(&rng);
    const GridQuery query = SampleQuery(*schema, cls, &rng);
    const CellBox box = BoxOf(*schema, query);
    MeasureBounds bounds;
    bounds.lo = rng.NextDouble() * 80.0;
    bounds.hi = bounds.lo + rng.NextDouble() * 40.0;

    const PruneStats with_measure = store.PruneBoxMeasure(box, bounds);
    const PruneStats box_only = store.PruneBox(box);
    EXPECT_EQ(with_measure.partitions, store.num_partitions());
    EXPECT_EQ(with_measure.scanned + with_measure.pruned,
              with_measure.partitions);
    // The measure predicate only ever prunes MORE, never less.
    EXPECT_GE(with_measure.pruned, box_only.pruned);

    // Brute force: replay the pruning decision per partition and check every
    // pruned one against the raw record list.
    uint64_t pruned = 0;
    for (uint64_t p = 0; p < store.num_partitions(); ++p) {
      const auto& part = store.partition(p);
      bool overlaps = part.records > 0;
      for (size_t d = 0; overlaps && d < box.lo.size(); ++d) {
        overlaps =
            part.zone_lo[d] < box.hi[d] && part.zone_hi[d] >= box.lo[d];
      }
      if (overlaps) {
        overlaps = part.measure_lo <= bounds.hi && part.measure_hi >= bounds.lo;
      }
      if (overlaps) continue;
      ++pruned;
      for (const auto& [coord, measure] : records) {
        const uint64_t rank = lin->RankOf(coord);
        if (rank < part.first_rank || rank >= part.end_rank()) continue;
        EXPECT_FALSE(box.Contains(coord) && bounds.Contains(measure))
            << "partition " << p
            << " pruned but holds a qualifying record: measure " << measure;
      }
    }
    EXPECT_EQ(with_measure.pruned, pruned);
  }

  // Wide-open bounds reduce the measure pruner to the box pruner.
  MeasureBounds open;
  open.lo = -1.0;
  open.hi = 101.0;
  const CellBox all = BoxOf(*schema, QueryAt(*schema, lat.ClassAt(0), 0));
  EXPECT_EQ(store.PruneBoxMeasure(all, open).scanned,
            store.PruneBox(all).scanned);
}

TEST(MicroPartitionTest, BaseBackendMeasurePruningDelegatesToPruneBox) {
  // A backend with no partition directory reports the same "nothing to
  // prune" stats whether or not a measure predicate rides along.
  Rng rng(0xBEEF);
  const auto schema = RandomSchema(&rng);
  const auto facts = RandomFacts(schema, &rng);
  const auto lin = RandomOrder(schema, &rng);
  const auto packed = MakeStorageBackend(StorageBackendKind::kPacked, lin,
                                         facts, SmallConfig())
                          .value();
  const QueryClassLattice lat(*schema);
  const GridQuery query = QueryAt(*schema, lat.ClassAt(0), 0);
  const CellBox box = BoxOf(*schema, query);
  MeasureBounds bounds;
  bounds.lo = 0.25;
  bounds.hi = 0.75;
  const PruneStats plain = packed->PruneBox(box);
  const PruneStats measured = packed->PruneBoxMeasure(box, bounds);
  EXPECT_EQ(measured.partitions, plain.partitions);
  EXPECT_EQ(measured.scanned, plain.scanned);
  EXPECT_EQ(measured.pruned, plain.pruned);
  EXPECT_EQ(measured.partitions, 0u);
}

TEST_P(MicroPartitionDifferentialTest, MovementPricingSharesPermutation) {
  Rng rng(0xF00D + static_cast<uint64_t>(GetParam()) * 104729);
  const auto schema = RandomSchema(&rng);
  const auto facts = RandomFacts(schema, &rng);
  auto orders = AllRowMajorOrders(schema);
  ASSERT_GE(orders.size(), 2u);
  const std::shared_ptr<const Linearization> from = std::move(orders[0]);
  const std::shared_ptr<const Linearization> to =
      std::move(orders[orders.size() - 1]);

  const auto packed_from = MakeStorageBackend(StorageBackendKind::kPacked,
                                              from, facts, SmallConfig())
                               .value();
  const auto packed_to = MakeStorageBackend(StorageBackendKind::kPacked, to,
                                            facts, SmallConfig())
                             .value();
  const auto micro_from =
      MakeStorageBackend(StorageBackendKind::kMicroPartition, from, facts,
                         SmallConfig())
          .value();
  const auto micro_to = MakeStorageBackend(StorageBackendKind::kMicroPartition,
                                           to, facts, SmallConfig())
                            .value();

  // Identical orders cost exactly zero at every granularity.
  const MovementCost none =
      ComputeMovementCost(*micro_from, *micro_from).value();
  EXPECT_EQ(none.moved_runs, 0u);
  EXPECT_EQ(none.moved_records, 0u);
  EXPECT_EQ(none.pages_moved(), 0u);
  EXPECT_EQ(none.partitions_read + none.partitions_written, 0u);

  const MovementCost run_cost =
      ComputeMovementCost(*packed_from, *packed_to).value();
  const MovementCost part_cost =
      ComputeMovementCost(*micro_from, *micro_to).value();

  // The permutation structure is granularity-independent...
  EXPECT_EQ(run_cost.total_cells, part_cost.total_cells);
  EXPECT_EQ(run_cost.stable_prefix_cells, part_cost.stable_prefix_cells);
  EXPECT_EQ(run_cost.moved_runs, part_cost.moved_runs);
  EXPECT_EQ(run_cost.moved_records, part_cost.moved_records);

  // ...while the page pricing differs in kind: run granularity reports no
  // partitions, partition granularity reports whole partitions whenever
  // anything moves.
  EXPECT_EQ(run_cost.partitions_read + run_cost.partitions_written, 0u);
  if (part_cost.moved_records > 0) {
    EXPECT_GT(part_cost.partitions_read, 0u);
    EXPECT_GT(part_cost.partitions_written, 0u);
    EXPECT_GT(part_cost.pages_moved(), 0u);
    // A rewritten partition is at least as big as the runs inside it.
    EXPECT_GE(part_cost.pages_read, run_cost.moved_runs > 0 ? 1u : 0u);
  }

  // Mixed-granularity pricing (packed source, micro destination) works too.
  const MovementCost mixed =
      ComputeMovementCost(*packed_from, *micro_to).value();
  EXPECT_EQ(mixed.moved_records, run_cost.moved_records);
  EXPECT_EQ(mixed.partitions_read, 0u);
  if (mixed.moved_records > 0) {
    EXPECT_GT(mixed.partitions_written, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MicroPartitionDifferentialTest,
                         ::testing::Range(1, 9));

TEST(MicroPartitionTest, AllPrunedFastPathSkipsDataAndCountsPruning) {
  // Populate only the dim0 < 2 half; queries over other dim0 blocks prune
  // the whole directory and must still measure an all-zero QueryIo.
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Symmetric(2, 2, 2).value());
  auto facts = std::make_shared<FactTable>(schema);
  for (CellId id = 0; id < schema->num_cells(); ++id) {
    const CellCoord coord = schema->Unflatten(id);
    if (coord[0] < 2) facts->AddRecord(coord, 1.0);
  }
  auto lin = RowMajorOrder::Make(schema, {0, 1}).value();
  const auto micro = MakeStorageBackend(StorageBackendKind::kMicroPartition,
                                        std::move(lin), facts, SmallConfig())
                         .value();
  ASSERT_GT(micro->num_partitions(), 1u);

  MetricsRegistry metrics;
  const ObsSink obs{&metrics, nullptr};
  const IoSimulator sim(*micro, obs);

  // A leaf-level query in the empty half of dim0.
  GridQuery query;
  query.cls = QueryClass{0, 2};  // dim0 at leaf level, dim1 at root
  query.block.resize(2);
  query.block[0] = schema->extent(0) - 1;
  query.block[1] = 0;
  const QueryIo io = sim.Measure(query);
  EXPECT_EQ(io.records, 0u);
  EXPECT_EQ(io.pages, 0u);
  EXPECT_EQ(io.seeks, 0u);
  EXPECT_EQ(io.min_pages, 0u);

  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counter("storage.partitions_scanned"), 0u);
  EXPECT_EQ(snap.counter("storage.partitions_pruned"),
            micro->num_partitions());
  // The fast path never touched the run decomposition or page counters.
  EXPECT_EQ(snap.counter("storage.pages_read"), 0u);
}

TEST(MicroPartitionTest, SimulatedSeeksMatchAnalyticModelOnCellPages) {
  // The obs_cost_crosscheck bridge, on the partitioned backend: one record
  // per cell and page == record makes pages coincide with cells, so
  // measured seeks must equal the analytic edge model's curve fragments.
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Symmetric(2, 2, 2).value());
  auto facts = std::make_shared<FactTable>(schema);
  for (CellId id = 0; id < schema->num_cells(); ++id) {
    facts->AddRecord(schema->Unflatten(id), 1.0);
  }
  StorageConfig config;
  config.page_size_bytes = 125;
  config.record_size_bytes = 125;
  config.micro_partition_pages = 3;
  const std::shared_ptr<const Linearization> shared_lin =
      RowMajorOrder::Make(schema, {1, 0}).value();
  const auto micro = MakeStorageBackend(StorageBackendKind::kMicroPartition,
                                        shared_lin, facts, config)
                         .value();
  ASSERT_EQ(micro->num_pages(), schema->num_cells());

  const ClassCostTable analytic = MeasureClassCosts(*shared_lin);
  const IoSimulator sim(*micro);
  const QueryClassLattice lat(*schema);
  for (uint64_t i = 0; i < lat.size(); ++i) {
    const QueryClass cls = lat.ClassAt(i);
    const ClassIoStats measured = sim.MeasureClass(cls);
    EXPECT_EQ(measured.total_seeks, analytic.TotalFragments(cls))
        << cls.ToString();
    EXPECT_EQ(measured.total_pages, schema->num_cells()) << cls.ToString();
  }
}

TEST(MicroPartitionTest, FactoryAndKindNamesRoundTrip) {
  EXPECT_STREQ(StorageBackendKindName(StorageBackendKind::kPacked), "packed");
  EXPECT_STREQ(StorageBackendKindName(StorageBackendKind::kMicroPartition),
               "micropartition");
  EXPECT_EQ(ParseStorageBackendKind("packed").value(),
            StorageBackendKind::kPacked);
  EXPECT_EQ(ParseStorageBackendKind("micropartition").value(),
            StorageBackendKind::kMicroPartition);
  EXPECT_EQ(ParseStorageBackendKind("micro-partition").value(),
            StorageBackendKind::kMicroPartition);
  EXPECT_FALSE(ParseStorageBackendKind("").ok());
  EXPECT_FALSE(ParseStorageBackendKind("flat-file").ok());

  Rng rng(99);
  const auto schema = RandomSchema(&rng);
  const auto facts = RandomFacts(schema, &rng);
  const auto lin = RandomOrder(schema, &rng);
  for (const auto kind :
       {StorageBackendKind::kPacked, StorageBackendKind::kMicroPartition}) {
    const auto backend =
        MakeStorageBackend(kind, lin, facts, SmallConfig()).value();
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->kind(), kind);
    EXPECT_STREQ(backend->kind_name(), StorageBackendKindName(kind));
  }

  // A zero partition-size target is a config error, not a crash.
  StorageConfig bad = SmallConfig();
  bad.micro_partition_pages = 0;
  EXPECT_FALSE(MicroPartitionStore::Pack(lin, facts, bad).ok());
}

TEST(MicroPartitionDeathTest, MeasureRangePastTheGridAborts) {
  Rng rng(7);
  const auto schema = RandomSchema(&rng);
  const auto facts = RandomFacts(schema, &rng);
  const auto lin = RandomOrder(schema, &rng);
  const auto layout = PackedLayout::Pack(lin, facts, SmallConfig()).value();
  const uint64_t n = schema->num_cells();
  // In-bounds edge cases stay fine.
  EXPECT_EQ(layout.MeasureRange(0, 0).records, 0u);
  EXPECT_EQ(layout.MeasureRange(n, 0).records, 0u);
  // Past the end, and wraparound shapes where start + len overflows back
  // into range: both must abort, not read out of bounds.
  EXPECT_DEATH(layout.MeasureRange(n, 1), "CHECK failed");
  EXPECT_DEATH(layout.MeasureRange(1, UINT64_MAX), "CHECK failed");
  EXPECT_DEATH(layout.MeasureRange(UINT64_MAX, 2), "CHECK failed");
}

}  // namespace
}  // namespace snakes
