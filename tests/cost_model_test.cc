#include "cost/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "storage/disk_model.h"

namespace snakes {
namespace {

TEST(CostModelKindTest, NameParseRoundTrip) {
  for (const CostModelKind kind :
       {CostModelKind::kAnalytic, CostModelKind::kHdd, CostModelKind::kSsd,
        CostModelKind::kCalibrated}) {
    const auto parsed = ParseCostModelKind(CostModelKindName(kind));
    ASSERT_TRUE(parsed.ok()) << CostModelKindName(kind);
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_FALSE(ParseCostModelKind("floppy").ok());
  EXPECT_FALSE(ParseCostModelKind("").ok());
}

TEST(CostModelTest, FeatureFieldsCoverTheStruct) {
  // One entry per feature, each name unique, each member distinct.
  const auto& fields = CostFeatureFields();
  ASSERT_EQ(fields.size(), 6u);
  CostFeatures probe;
  double next = 1.0;
  for (const CostFeatureField& field : fields) probe.*(field.member) = next++;
  EXPECT_EQ(probe.seeks, 1.0);
  EXPECT_EQ(probe.pages, 2.0);
  EXPECT_EQ(probe.runs, 3.0);
  EXPECT_EQ(probe.records, 4.0);
  EXPECT_EQ(probe.partitions_scanned, 5.0);
  EXPECT_EQ(probe.partitions_pruned, 6.0);
}

TEST(CostModelTest, FeaturesFromQueryIo) {
  QueryIo io;
  io.seeks = 3;
  io.pages = 17;
  io.records = 420;
  const CostFeatures f = CostFeatures::FromQueryIo(io);
  EXPECT_EQ(f.seeks, 3.0);
  EXPECT_EQ(f.pages, 17.0);
  EXPECT_EQ(f.records, 420.0);
}

TEST(CostModelTest, AnalyticDefaultIsBitCompatibleWithDiskModel) {
  // The kAnalytic model must reproduce the seed's DiskModel numbers
  // bit-for-bit — same formula, same operation order.
  const auto& model = DefaultCostModel();
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->kind(), CostModelKind::kAnalytic);
  const DiskModel disk;  // seed defaults
  EXPECT_EQ(model->SeekMs(), disk.seek_ms);
  for (const uint64_t page_size : {uint64_t{1024}, uint64_t{8192}}) {
    for (double seeks = 0.0; seeks < 40.0; seeks += 7.25) {
      for (double pages = 0.0; pages < 300.0; pages += 61.5) {
        CostFeatures f;
        f.seeks = seeks;
        f.pages = pages;
        const double expected = disk.ExpectedMs(seeks, pages, page_size);
        const double got = model->EstimateMs(f, page_size);
        EXPECT_EQ(got, expected) << seeks << " seeks, " << pages << " pages";
      }
    }
  }
}

TEST(CostModelTest, DefaultCostModelIsAProcessSingleton) {
  EXPECT_EQ(DefaultCostModel().get(), DefaultCostModel().get());
}

TEST(CostModelTest, PresetsOrderSeekCosts) {
  const auto hdd = MakeCostModel(CostModelKind::kHdd).value();
  const auto ssd = MakeCostModel(CostModelKind::kSsd).value();
  const auto analytic = MakeCostModel(CostModelKind::kAnalytic).value();
  // Seeks: 1999 disk > modern hdd >> ssd.
  EXPECT_GT(analytic->SeekMs(), hdd->SeekMs());
  EXPECT_GT(hdd->SeekMs(), 10.0 * ssd->SeekMs());
  // Transfer: same 100-page sequential read is far faster on ssd.
  CostFeatures seq;
  seq.seeks = 1.0;
  seq.pages = 100.0;
  EXPECT_GT(hdd->EstimateMs(seq, 8192), ssd->EstimateMs(seq, 8192));
}

TEST(CostModelTest, CalibratedEstimateIsInterceptPlusDot) {
  CostFeatures coef;
  coef.seeks = 2.0;
  coef.pages = 0.5;
  coef.records = 0.001;
  const CalibratedLinearModel model(1.25, coef);
  CostFeatures f;
  f.seeks = 3.0;
  f.pages = 10.0;
  f.records = 100.0;
  EXPECT_DOUBLE_EQ(model.EstimateMs(f, 8192),
                   1.25 + 3.0 * 2.0 + 10.0 * 0.5 + 100.0 * 0.001);
  // Fitted models absorbed the page size at calibration time.
  EXPECT_EQ(model.EstimateMs(f, 8192), model.EstimateMs(f, 1024));
  EXPECT_EQ(model.SeekMs(), 2.0);
  EXPECT_EQ(model.kind(), CostModelKind::kCalibrated);
}

TEST(CostModelTest, CalibratedJsonRoundTripIsExact) {
  CostFeatures coef;
  coef.seeks = 9.5;
  coef.pages = 0.546133333333333364;  // full-precision survives %.17g
  coef.partitions_pruned = -0.0625;
  const CalibratedLinearModel model(0.123456789012345678, coef, "fitted");
  const auto parsed = CalibratedLinearModel::FromJson(model.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->intercept_ms(), model.intercept_ms());
  for (const CostFeatureField& field : CostFeatureFields()) {
    EXPECT_EQ(parsed->coefficients_ms().*(field.member),
              model.coefficients_ms().*(field.member))
        << field.name;
  }
}

TEST(CostModelTest, FromJsonRejectsMalformedInput) {
  // Every rejection is a Status, never a NaN model.
  for (const char* bad : {
           "",                                           // empty
           "not json",                                   // garbage
           "{\"coefficients\": {\"seeks\": 1.0}}",       // missing intercept
           "{\"intercept_ms\": 1.0}",                    // missing coefficients
           "{\"intercept_ms\": 1.0, \"coefficients\": "
           "{\"warp_drives\": 2.0}}",                    // unknown feature
           "{\"intercept_ms\": nan, \"coefficients\": "
           "{\"seeks\": 1.0}}",                          // non-finite
           "{\"intercept_ms\": 1e999, \"coefficients\": "
           "{\"seeks\": 1.0}}",                          // overflow
       }) {
    const auto parsed = CalibratedLinearModel::FromJson(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << bad;
  }
}

TEST(CostModelTest, FromJsonSkipsUnknownTopLevelKeys) {
  // Fit metadata (r_squared, per-class errors) rides along in the same
  // file; the parser must skip what it does not price.
  const char* json =
      "{\"model\": \"calibrated-linear\", \"intercept_ms\": 2.0, "
      "\"r_squared\": 0.98, \"per_class\": {\"(0,0)\": 0.1, \"(1,0)\": 0.2}, "
      "\"coefficients\": {\"seeks\": 4.0, \"pages\": 0.25}}";
  const auto parsed = CalibratedLinearModel::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->intercept_ms(), 2.0);
  EXPECT_EQ(parsed->coefficients_ms().seeks, 4.0);
  EXPECT_EQ(parsed->coefficients_ms().pages, 0.25);
}

TEST(CostModelTest, MakeCostModelSpecs) {
  // Preset kinds need no payload; kCalibrated without one is an error.
  EXPECT_TRUE(MakeCostModel(CostModelKind::kAnalytic).ok());
  EXPECT_FALSE(MakeCostModel(CostModelKind::kCalibrated).ok());

  CostModelSpec spec;
  spec.kind = CostModelKind::kCalibrated;
  EXPECT_FALSE(MakeCostModel(spec).ok());  // empty payload

  spec.calibrated_json =
      "{\"intercept_ms\": 0.5, \"coefficients\": {\"pages\": 0.125}}";
  const auto inline_model = MakeCostModel(spec);
  ASSERT_TRUE(inline_model.ok()) << inline_model.status().ToString();
  EXPECT_EQ(inline_model.value()->kind(), CostModelKind::kCalibrated);

  // Non-'{' payloads are file paths; unreadable ones fail cleanly.
  spec.calibrated_json = "/no/such/coefficients.json";
  EXPECT_FALSE(MakeCostModel(spec).ok());

  const std::string path = ::testing::TempDir() + "/coef.json";
  {
    std::ofstream out(path);
    out << "{\"intercept_ms\": 0.5, \"coefficients\": {\"pages\": 0.125}}";
  }
  spec.calibrated_json = path;
  const auto file_model = MakeCostModel(spec);
  ASSERT_TRUE(file_model.ok()) << file_model.status().ToString();
  EXPECT_EQ(file_model.value()->EstimateMs(CostFeatures{}, 8192), 0.5);
}

TEST(CostModelTest, ToJsonDescribesEveryKind) {
  for (const CostModelKind kind :
       {CostModelKind::kAnalytic, CostModelKind::kHdd, CostModelKind::kSsd}) {
    const auto model = MakeCostModel(kind).value();
    const std::string json = model->ToJson();
    EXPECT_NE(json.find(CostModelKindName(kind)), std::string::npos) << json;
  }
}

}  // namespace
}  // namespace snakes
