// Rank-run decomposition properties: for random schemas and boxes, every
// strategy's AppendRuns must emit the unique sorted/disjoint/coalesced run
// list covering exactly the box's ranks (cross-checked against the per-cell
// reference), and the interval-based IoSimulator / cost paths must reproduce
// the seed's cell-walk results number for number. Seeds are fixed, so
// failures reproduce.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cost/workload_cost.h"
#include "curves/hilbert.h"
#include "curves/linearization.h"
#include "curves/path_order.h"
#include "curves/rank_run.h"
#include "curves/row_major.h"
#include "curves/z_curve.h"
#include "hierarchy/star_schema.h"
#include "lattice/grid_query.h"
#include "lattice/workload.h"
#include "storage/chunks.h"
#include "storage/executor.h"
#include "storage/fact_table.h"
#include "storage/pager.h"
#include "util/rng.h"

namespace snakes {
namespace {

// ---------------------------------------------------------------------------
// Unit tests of the run primitives.

TEST(RankRunTest, AppendRunCoalescesAdjacent) {
  std::vector<RankRun> runs;
  AppendRun(&runs, 0, 3, 2);
  AppendRun(&runs, 0, 5, 4);  // adjacent: merges
  AppendRun(&runs, 0, 12, 1);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], (RankRun{3, 6}));
  EXPECT_EQ(runs[1], (RankRun{12, 1}));
  EXPECT_TRUE(ValidateRuns(runs).ok());
  EXPECT_EQ(TotalRunCells(runs), 7u);
}

TEST(RankRunTest, AppendRunRespectsFloor) {
  std::vector<RankRun> runs{{0, 5}};
  // floor == 1: the pre-existing run must not be merged into even though
  // rank 5 is adjacent to it.
  AppendRun(&runs, 1, 5, 3);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[1], (RankRun{5, 3}));
}

TEST(RankRunTest, AppendRunDropsEmpty) {
  std::vector<RankRun> runs;
  AppendRun(&runs, 0, 7, 0);
  EXPECT_TRUE(runs.empty());
}

TEST(RankRunTest, SortAndCoalesce) {
  std::vector<RankRun> runs{{9, 1}, {0, 3}, {3, 2}, {7, 2}};
  SortAndCoalesce(&runs, 0);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], (RankRun{0, 5}));
  EXPECT_EQ(runs[1], (RankRun{7, 3}));
  EXPECT_TRUE(ValidateRuns(runs).ok());
}

TEST(RankRunTest, ValidateRejectsBadLists) {
  EXPECT_FALSE(ValidateRuns({{0, 0}}).ok());          // empty run
  EXPECT_FALSE(ValidateRuns({{0, 2}, {1, 2}}).ok());  // overlap
  EXPECT_FALSE(ValidateRuns({{0, 2}, {2, 1}}).ok());  // not coalesced
  EXPECT_FALSE(ValidateRuns({{5, 1}, {0, 1}}).ok());  // unsorted
  EXPECT_TRUE(ValidateRuns({{0, 2}, {3, 4}}).ok());
}

TEST(RankRunTest, RowMajorBoxEmitterReusedAcrossBoxes) {
  // One emitter, many boxes of the same grid (the chunked-order reuse
  // pattern): identical output to the one-shot helper per box.
  const uint64_t extents[] = {3, 4, 5};
  RowMajorBoxEmitter emitter(extents, 3);
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    uint64_t lo[3];
    uint64_t hi[3];
    for (int p = 0; p < 3; ++p) {
      const uint64_t a = rng.Below(extents[p] + 1);
      const uint64_t b = rng.Below(extents[p] + 1);
      lo[p] = std::min(a, b);
      hi[p] = std::max(a, b);
    }
    const uint64_t base = rng.Below(1000);
    std::vector<RankRun> expected{{0, 1}};
    AppendRowMajorBoxRuns(extents, lo, hi, 3, base, 1, &expected);
    std::vector<RankRun> actual{{0, 1}};
    emitter.Append(lo, hi, base, 1, &actual);
    EXPECT_EQ(actual, expected);
  }
}

TEST(RankRunTest, RowMajorBoxRunsClippedInnermostRows) {
  // Regression pin for the odometer's offset bookkeeping: an innermost
  // position clipped on *both* sides, under an outer position that wraps,
  // exercises the per-wrap rewind (hi-lo)*stride against hand-computed runs.
  const uint64_t extents[] = {2, 3, 5};
  const uint64_t lo[] = {0, 1, 2};
  const uint64_t hi[] = {2, 3, 4};
  std::vector<RankRun> runs;
  AppendRowMajorBoxRuns(extents, lo, hi, 3, /*base=*/7, 0, &runs);
  // Rows (p0,p1): (0,1) off 5, (0,2) off 10, (1,1) off 20, (1,2) off 25 —
  // each clipped to cols [2,4), then shifted by base 7.
  const std::vector<RankRun> expected = {
      {14, 2}, {19, 2}, {29, 2}, {34, 2}};
  EXPECT_EQ(runs, expected);
  EXPECT_TRUE(ValidateRuns(runs).ok());

  // Same box with the innermost position fully covered: rows (0,1)-(0,2)
  // and (1,1)-(1,2) are contiguous and must coalesce into two runs.
  const uint64_t full_lo[] = {0, 1, 0};
  const uint64_t full_hi[] = {2, 3, 5};
  runs.clear();
  AppendRowMajorBoxRuns(extents, full_lo, full_hi, 3, /*base=*/0, 0, &runs);
  const std::vector<RankRun> folded = {{5, 10}, {20, 10}};
  EXPECT_EQ(runs, folded);
}

TEST(RankRunTest, RowMajorBoxRuns) {
  // 4x6 grid, box rows [1,3) x cols [2,5): two 3-cell runs.
  const uint64_t extents[] = {4, 6};
  const uint64_t lo[] = {1, 2};
  const uint64_t hi[] = {3, 5};
  std::vector<RankRun> runs;
  AppendRowMajorBoxRuns(extents, lo, hi, 2, /*base=*/0, 0, &runs);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], (RankRun{8, 3}));
  EXPECT_EQ(runs[1], (RankRun{14, 3}));
  // Full-width rows fold into a single run.
  const uint64_t full_lo[] = {1, 0};
  const uint64_t full_hi[] = {3, 6};
  runs.clear();
  AppendRowMajorBoxRuns(extents, full_lo, full_hi, 2, /*base=*/0, 0, &runs);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (RankRun{6, 12}));
}

// ---------------------------------------------------------------------------
// Randomized cross-checks.

std::shared_ptr<const StarSchema> RandomSchema(Rng* rng, uint64_t max_cells,
                                               bool pow2 = false) {
  const char* kNames[] = {"x", "y", "z"};
  for (;;) {
    const int k = 2 + static_cast<int>(rng->Below(2));
    std::vector<Hierarchy> dims;
    uint64_t cells = 1;
    for (int d = 0; d < k; ++d) {
      std::vector<uint64_t> fanouts;
      const int levels = 1 + static_cast<int>(rng->Below(2));
      for (int l = 0; l < levels; ++l) {
        fanouts.push_back(pow2 ? (uint64_t{1} << (1 + rng->Below(2)))
                               : 2 + rng->Below(4));
      }
      auto h = Hierarchy::Uniform(kNames[d], fanouts).value();
      cells *= h.num_leaves();
      dims.push_back(std::move(h));
    }
    if (cells > max_cells) continue;
    return std::make_shared<StarSchema>(
        StarSchema::Make("random", std::move(dims)).value());
  }
}

LatticePath RandomPath(const QueryClassLattice& lat, Rng* rng) {
  std::vector<int> steps;
  for (int d = 0; d < lat.num_dims(); ++d) {
    for (int l = 0; l < lat.levels(d); ++l) steps.push_back(d);
  }
  for (size_t i = steps.size(); i > 1; --i) {
    std::swap(steps[i - 1], steps[rng->Below(i)]);
  }
  return LatticePath::FromSteps(lat, steps).value();
}

CellBox RandomBox(const StarSchema& schema, Rng* rng) {
  CellBox box;
  box.lo.resize(static_cast<size_t>(schema.num_dims()));
  box.hi.resize(static_cast<size_t>(schema.num_dims()));
  for (int d = 0; d < schema.num_dims(); ++d) {
    const uint64_t extent = schema.extent(d);
    const uint64_t a = rng->Below(extent + 1);
    const uint64_t b = rng->Below(extent + 1);
    box.lo[static_cast<size_t>(d)] = std::min(a, b);
    box.hi[static_cast<size_t>(d)] = std::max(a, b);
  }
  return box;
}

/// AppendRuns output must equal the per-cell reference exactly, pass
/// ValidateRuns, cover box.NumCells() ranks, and leave preceding entries of
/// the output vector untouched.
void CheckDecomposition(const Linearization& lin, const CellBox& box) {
  std::vector<RankRun> expected{{uint64_t{1} << 60, 1}};  // sentinel
  lin.AppendRunsByRankScan(box, &expected);
  std::vector<RankRun> actual{{uint64_t{1} << 60, 1}};
  lin.AppendRuns(box, &actual);
  ASSERT_FALSE(actual.empty());
  EXPECT_EQ(actual.front(), (RankRun{uint64_t{1} << 60, 1}))
      << lin.name() << ": AppendRuns disturbed existing entries";
  expected.erase(expected.begin());
  actual.erase(actual.begin());
  EXPECT_EQ(actual, expected) << lin.name();
  EXPECT_TRUE(ValidateRuns(actual).ok()) << lin.name();
  uint64_t cells = 1;
  bool empty = false;
  for (size_t d = 0; d < box.lo.size(); ++d) {
    cells *= box.hi[d] - box.lo[d];
    empty = empty || box.hi[d] <= box.lo[d];
  }
  EXPECT_EQ(TotalRunCells(actual), empty ? 0 : cells) << lin.name();
}

/// Random boxes (clipped and degenerate) plus every query box of every
/// lattice class.
void CheckStrategy(const Linearization& lin, Rng* rng) {
  const StarSchema& schema = lin.schema();
  for (int i = 0; i < 12; ++i) {
    CheckDecomposition(lin, RandomBox(schema, rng));
  }
  const QueryClassLattice lat(schema);
  for (uint64_t i = 0; i < lat.size(); ++i) {
    const QueryClass cls = lat.ClassAt(i);
    const uint64_t num_queries = NumQueriesInClass(schema, cls);
    for (uint64_t q = 0; q < num_queries; ++q) {
      CheckDecomposition(lin, BoxOf(schema, QueryAt(schema, cls, q)));
    }
  }
}

class RankRunRandomizedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RankRunRandomizedTest, PathOrders) {
  Rng rng(GetParam() * 101);
  auto schema = RandomSchema(&rng, 1024);
  const QueryClassLattice lat(*schema);
  const LatticePath path = RandomPath(lat, &rng);
  auto plain = PathOrder::Make(schema, path, false).value();
  auto snaked = PathOrder::Make(schema, path, true).value();
  EXPECT_TRUE(plain->HasRunDecomposition());
  EXPECT_TRUE(snaked->HasRunDecomposition());
  CheckStrategy(*plain, &rng);
  CheckStrategy(*snaked, &rng);
}

TEST_P(RankRunRandomizedTest, RowMajorAndMaterialized) {
  Rng rng(GetParam() * 211);
  auto schema = RandomSchema(&rng, 1024);
  std::vector<int> perm(static_cast<size_t>(schema->num_dims()));
  for (size_t d = 0; d < perm.size(); ++d) perm[d] = static_cast<int>(d);
  for (size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.Below(i)]);
  }
  auto row_major = RowMajorOrder::Make(schema, perm).value();
  EXPECT_TRUE(row_major->HasRunDecomposition());
  CheckStrategy(*row_major, &rng);

  // Materialized copy of a snaked path: correct via the inverse_ scan.
  const QueryClassLattice lat(*schema);
  auto snaked =
      PathOrder::Make(schema, RandomPath(lat, &rng), true).value();
  auto materialized = MaterializedLinearization::From(*snaked);
  EXPECT_FALSE(materialized->HasRunDecomposition());
  CheckStrategy(*materialized, &rng);
}

TEST_P(RankRunRandomizedTest, BitInterleavedCurves) {
  Rng rng(GetParam() * 307);
  auto schema = RandomSchema(&rng, 1024, /*pow2=*/true);
  auto z = ZCurve::Make(schema).value();
  auto gray = GrayCurve::Make(schema).value();
  EXPECT_TRUE(z->HasRunDecomposition());
  EXPECT_TRUE(gray->HasRunDecomposition());
  CheckStrategy(*z, &rng);
  CheckStrategy(*gray, &rng);
}

TEST_P(RankRunRandomizedTest, HilbertCurve) {
  Rng rng(GetParam() * 401);
  // Hilbert needs equal power-of-two extents; split the bits over 1-2
  // levels so class boxes are non-trivial.
  const int k = 2 + static_cast<int>(rng.Below(2));
  const int bits = 2 + static_cast<int>(rng.Below(k == 2 ? 2 : 1));
  const char* kNames[] = {"x", "y", "z"};
  std::vector<Hierarchy> dims;
  for (int d = 0; d < k; ++d) {
    std::vector<uint64_t> fanouts;
    if (bits > 1 && rng.Chance(0.5)) {
      fanouts = {uint64_t{1} << (bits - 1), 2};
    } else {
      fanouts = {uint64_t{1} << bits};
    }
    dims.push_back(Hierarchy::Uniform(kNames[d], fanouts).value());
  }
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Make("hilbert-grid", std::move(dims)).value());
  auto hilbert = HilbertCurve::Make(schema, rng.Chance(0.5)).value();
  EXPECT_TRUE(hilbert->HasRunDecomposition());
  CheckStrategy(*hilbert, &rng);
}

TEST_P(RankRunRandomizedTest, ChunkedOrders) {
  Rng rng(GetParam() * 503);
  auto schema = RandomSchema(&rng, 1024);
  // Random chunk class (strictly below the top in every dimension so the
  // chunk grid keeps at least one level); chunk order is a snaked path or
  // row-major over the chunk grid.
  const QueryClassLattice lat(*schema);
  QueryClass chunk_class = lat.Bottom();
  for (int d = 0; d < lat.num_dims(); ++d) {
    chunk_class.set_level(
        d, static_cast<int>(rng.Below(static_cast<uint64_t>(lat.levels(d)))));
  }
  auto chunk_grid = ChunkGridSchema(*schema, chunk_class).value();
  std::shared_ptr<const Linearization> chunk_order;
  if (rng.Chance(0.5)) {
    const QueryClassLattice chunk_lat(*chunk_grid);
    chunk_order = std::shared_ptr<const Linearization>(
        MakePathOrder(chunk_grid, RandomPath(chunk_lat, &rng), true)
            .value());
  } else {
    std::vector<int> perm(static_cast<size_t>(chunk_grid->num_dims()));
    for (size_t d = 0; d < perm.size(); ++d) perm[d] = static_cast<int>(d);
    for (size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.Below(i)]);
    }
    chunk_order = std::shared_ptr<const Linearization>(
        RowMajorOrder::Make(chunk_grid, perm).value());
  }
  auto chunked = ChunkedOrder::Make(schema, chunk_class, chunk_order).value();
  EXPECT_TRUE(chunked->HasRunDecomposition());
  CheckStrategy(*chunked, &rng);
}

/// A spread of run-decomposing strategies (plus one materialized copy) over
/// one schema, shared by the class-emission and simulator cross-checks.
std::vector<std::shared_ptr<const Linearization>> RandomStrategies(
    std::shared_ptr<const StarSchema> schema, Rng* rng) {
  const QueryClassLattice lat(*schema);
  std::vector<std::shared_ptr<const Linearization>> strategies;
  const LatticePath path = RandomPath(lat, rng);
  strategies.push_back(PathOrder::Make(schema, path, false).value());
  strategies.push_back(PathOrder::Make(schema, path, true).value());
  std::vector<int> perm(static_cast<size_t>(schema->num_dims()));
  for (size_t d = 0; d < perm.size(); ++d) perm[d] = static_cast<int>(d);
  strategies.push_back(RowMajorOrder::Make(schema, perm).value());
  strategies.push_back(
      MaterializedLinearization::From(*strategies.back()));
  return strategies;
}

// ---------------------------------------------------------------------------
// Batched class emission, arena reuse and the degenerate-class detector.

/// AppendClassRuns into an arena must equal the per-box AppendRuns reference
/// query for query; a reused arena must reproduce a fresh one exactly (no
/// stale-run leakage); and ClassRunsDegenerate must be sound: when it fires,
/// every run of the class is a single cell and the class's queries tile the
/// grid (total fragments == num_cells). With `exact_detector`, additionally
/// pin the converse: the detector fires on *every* class whose runs are all
/// single cells — it never leaves closed-form classes on the slow path, and
/// never fires on a class whose runs would coalesce.
void CheckClassEmission(const Linearization& lin, bool exact_detector,
                        RunArena* reused) {
  const StarSchema& schema = lin.schema();
  const QueryClassLattice lat(schema);
  for (uint64_t i = 0; i < lat.size(); ++i) {
    const QueryClass cls = lat.ClassAt(i);
    const uint64_t num_queries = NumQueriesInClass(schema, cls);
    std::vector<std::vector<RankRun>> expected(num_queries);
    uint64_t total = 0;
    bool all_single_cell = true;
    for (uint64_t q = 0; q < num_queries; ++q) {
      lin.AppendRuns(BoxOf(schema, QueryAt(schema, cls, q)), &expected[q]);
      total += expected[q].size();
      for (const RankRun& run : expected[q]) {
        all_single_cell = all_single_cell && run.len == 1;
      }
    }

    RunArena fresh;
    lin.AppendClassRuns(cls, &fresh);
    lin.AppendClassRuns(cls, reused);

    // Arena reuse is bit-identical to a fresh arena: same emission order,
    // same runs, same query ids — previous (larger) classes leave nothing.
    ASSERT_EQ(fresh.num_queries(), num_queries) << lin.name();
    ASSERT_EQ(reused->num_queries(), num_queries) << lin.name();
    ASSERT_EQ(fresh.num_runs(), reused->num_runs()) << lin.name();
    for (size_t r = 0; r < fresh.num_runs(); ++r) {
      ASSERT_EQ(fresh.run(r), reused->run(r)) << lin.name();
      ASSERT_EQ(fresh.run_qid(r), reused->run_qid(r)) << lin.name();
    }

    // Batched emission == per-box reference, query by query.
    ASSERT_EQ(fresh.num_runs(), total) << lin.name() << " " << cls.ToString();
    std::vector<std::vector<RankRun>> grouped(num_queries);
    for (size_t r = 0; r < fresh.num_runs(); ++r) {
      ASSERT_LT(fresh.run_qid(r), num_queries) << lin.name();
      grouped[fresh.run_qid(r)].push_back(fresh.run(r));
    }
    for (uint64_t q = 0; q < num_queries; ++q) {
      ASSERT_EQ(grouped[q], expected[q])
          << lin.name() << " " << cls.ToString() << " query " << q;
      ASSERT_EQ(fresh.query_run_count(q), expected[q].size()) << lin.name();
    }

    // Detector soundness (and exactness where promised).
    const bool degenerate = lin.ClassRunsDegenerate(cls);
    if (degenerate) {
      EXPECT_EQ(total, lin.num_cells())
          << lin.name() << ": detector fired but runs do not tile the grid ("
          << cls.ToString() << ")";
      EXPECT_TRUE(all_single_cell)
          << lin.name() << ": detector fired on a class with a coalesced run ("
          << cls.ToString() << ")";
    }
    if (exact_detector) {
      EXPECT_EQ(degenerate, all_single_cell && total == lin.num_cells())
          << lin.name() << " " << cls.ToString();
    }
  }
}

TEST_P(RankRunRandomizedTest, BatchedClassEmissionMatchesPerBox) {
  Rng rng(GetParam() * 809);
  auto schema = RandomSchema(&rng, 512);
  RunArena reused;
  const auto strategies = RandomStrategies(schema, &rng);
  // Path orders carry exact degeneracy predicates; row-major and
  // materialized fall back to the (sound, inexact) base detector.
  CheckClassEmission(*strategies[0], /*exact_detector=*/true, &reused);
  CheckClassEmission(*strategies[1], /*exact_detector=*/true, &reused);
  CheckClassEmission(*strategies[2], /*exact_detector=*/false, &reused);
  CheckClassEmission(*strategies[3], /*exact_detector=*/false, &reused);
}

TEST_P(RankRunRandomizedTest, BatchedClassEmissionInterleavedCurves) {
  Rng rng(GetParam() * 907);
  auto schema = RandomSchema(&rng, 512, /*pow2=*/true);
  RunArena reused;
  // Uniform power-of-two hierarchies: the Z and Gray detectors are exact.
  CheckClassEmission(*ZCurve::Make(schema).value(), /*exact_detector=*/true,
                     &reused);
  CheckClassEmission(*GrayCurve::Make(schema).value(), /*exact_detector=*/true,
                     &reused);
}

TEST_P(RankRunRandomizedTest, BatchedClassEmissionHilbertAndChunked) {
  Rng rng(GetParam() * 1009);
  RunArena reused;
  // Hilbert on a two-level grid (the partial-level rotation edge).
  std::vector<Hierarchy> dims;
  dims.push_back(Hierarchy::Uniform("x", {2, 4}).value());
  dims.push_back(Hierarchy::Uniform("y", {2, 4}).value());
  auto hschema = std::make_shared<StarSchema>(
      StarSchema::Make("hilbert-grid", std::move(dims)).value());
  CheckClassEmission(*HilbertCurve::Make(hschema, rng.Chance(0.5)).value(),
                     /*exact_detector=*/false, &reused);

  // A chunked order exercises the default per-box AppendClassRuns.
  auto schema = RandomSchema(&rng, 256);
  const QueryClassLattice lat(*schema);
  QueryClass chunk_class = lat.Bottom();
  for (int d = 0; d < lat.num_dims(); ++d) {
    chunk_class.set_level(
        d, static_cast<int>(rng.Below(static_cast<uint64_t>(lat.levels(d)))));
  }
  auto chunk_grid = ChunkGridSchema(*schema, chunk_class).value();
  const QueryClassLattice chunk_lat(*chunk_grid);
  auto chunk_order = std::shared_ptr<const Linearization>(
      MakePathOrder(chunk_grid, RandomPath(chunk_lat, &rng), true).value());
  auto chunked = ChunkedOrder::Make(schema, chunk_class, chunk_order).value();
  CheckClassEmission(*chunked, /*exact_detector=*/false, &reused);
}

// ---------------------------------------------------------------------------
// Simulator and cost-model cross-checks: run-based evaluation must equal the
// seed's cell walk on every number it produces.

TEST_P(RankRunRandomizedTest, SimulatorMatchesCellWalk) {
  Rng rng(GetParam() * 607);
  auto schema = RandomSchema(&rng, 512);
  auto facts = std::make_shared<FactTable>(schema);
  const uint64_t records = 1 + rng.Below(6 * schema->num_cells());
  for (uint64_t r = 0; r < records; ++r) {
    facts->AddRecord(schema->Unflatten(rng.Below(schema->num_cells())), 1.0);
  }
  const StorageConfig config{64 + rng.Below(512), 16};
  const QueryClassLattice lat(*schema);

  for (auto& lin : RandomStrategies(schema, &rng)) {
    const auto layout = PackedLayout::Pack(lin, facts, config).value();
    const IoSimulator sim(layout);
    for (uint64_t i = 0; i < lat.size(); ++i) {
      const QueryClass cls = lat.ClassAt(i);
      // Query-by-query: run-based Measure equals the cell walk exactly.
      const uint64_t num_queries = NumQueriesInClass(*schema, cls);
      for (uint64_t q = 0; q < num_queries; ++q) {
        const GridQuery query = QueryAt(*schema, cls, q);
        const QueryIo runs_io = sim.Measure(query);
        const QueryIo walk_io = sim.MeasureCellWalk(query);
        EXPECT_EQ(runs_io.records, walk_io.records) << query.ToString();
        EXPECT_EQ(runs_io.pages, walk_io.pages) << query.ToString();
        EXPECT_EQ(runs_io.seeks, walk_io.seeks) << query.ToString();
        EXPECT_EQ(runs_io.min_pages, walk_io.min_pages) << query.ToString();
      }
      // Class aggregates: both paths produce identical stats, including the
      // bit-identical normalized-blocks sum (same summation order).
      const ClassIoStats runs_stats = sim.MeasureClass(cls);
      const ClassIoStats walk_stats = sim.MeasureClassCellWalk(cls);
      EXPECT_EQ(runs_stats.num_queries, walk_stats.num_queries);
      EXPECT_EQ(runs_stats.num_nonempty, walk_stats.num_nonempty);
      EXPECT_EQ(runs_stats.total_pages, walk_stats.total_pages);
      EXPECT_EQ(runs_stats.total_seeks, walk_stats.total_seeks);
      EXPECT_EQ(runs_stats.total_normalized, walk_stats.total_normalized);
    }
  }
}

TEST_P(RankRunRandomizedTest, ExpectedCostMatchesEdgeWalk) {
  Rng rng(GetParam() * 701);
  auto schema = RandomSchema(&rng, 1024);
  const QueryClassLattice lat(*schema);
  const Workload mu = Workload::Random(lat, &rng);
  for (auto& lin : RandomStrategies(schema, &rng)) {
    const double edge =
        MeasureExpectedCost(mu, *lin, {}, CostEvalMode::kEdgeWalk);
    const double runs =
        MeasureExpectedCost(mu, *lin, {}, CostEvalMode::kRankRuns);
    const double autod = MeasureExpectedCost(mu, *lin);
    // Bit-identical, not just close: the run path feeds the same per-class
    // integers through the same summation.
    EXPECT_EQ(edge, runs) << lin->name();
    EXPECT_EQ(edge, autod) << lin->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankRunRandomizedTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace snakes
