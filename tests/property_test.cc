// Cross-module randomized properties: for randomly drawn star schemas,
// workloads, and strategies, the paper's structural invariants must hold
// everywhere — not just on the hand-picked fixtures of the per-module
// suites. Seeds are fixed, so failures reproduce.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/advisor.h"
#include "cost/class_cost.h"
#include "cost/edge_model.h"
#include "cost/workload_cost.h"
#include "curves/path_order.h"
#include "curves/row_major.h"
#include "cv/consistency.h"
#include "cv/sandwich.h"
#include "cv/transform.h"
#include "hierarchy/star_schema.h"
#include "lattice/workload.h"
#include "path/dpkd.h"
#include "path/snaked_dp.h"
#include "storage/executor.h"
#include "storage/fact_table.h"
#include "storage/pager.h"
#include "util/rng.h"

namespace snakes {
namespace {

std::shared_ptr<const StarSchema> RandomSchema(Rng* rng, uint64_t max_cells) {
  for (;;) {
    const int k = 2 + static_cast<int>(rng->Below(2));
    std::vector<Hierarchy> dims;
    uint64_t cells = 1;
    for (int d = 0; d < k; ++d) {
      std::vector<uint64_t> fanouts;
      const int levels = 1 + static_cast<int>(rng->Below(2));
      for (int l = 0; l < levels; ++l) fanouts.push_back(2 + rng->Below(4));
      auto h = Hierarchy::Uniform("d" + std::to_string(d), fanouts).value();
      cells *= h.num_leaves();
      dims.push_back(std::move(h));
    }
    if (cells > max_cells) continue;
    return std::make_shared<StarSchema>(
        StarSchema::Make("random", std::move(dims)).value());
  }
}

LatticePath RandomPath(const QueryClassLattice& lat, Rng* rng) {
  std::vector<int> steps;
  for (int d = 0; d < lat.num_dims(); ++d) {
    for (int l = 0; l < lat.levels(d); ++l) steps.push_back(d);
  }
  for (size_t i = steps.size(); i > 1; --i) {
    std::swap(steps[i - 1], steps[rng->Below(i)]);
  }
  return LatticePath::FromSteps(lat, steps).value();
}

class RandomizedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomizedTest, PipelineInvariants) {
  Rng rng(GetParam());
  auto schema = RandomSchema(&rng, 4096);
  const QueryClassLattice lat(*schema);
  const Workload mu = Workload::Random(lat, &rng);
  const LatticePath path = RandomPath(lat, &rng);

  auto plain = PathOrder::Make(schema, path, false).value();
  auto snaked = PathOrder::Make(schema, path, true).value();

  // 1. Both orders are bijections.
  ASSERT_TRUE(plain->Validate().ok());
  ASSERT_TRUE(snaked->Validate().ok());

  // 2. Snaked orders have no diagonal edges; plain orders may.
  const EdgeHistogram plain_hist = MeasureEdgeHistogram(*plain);
  const EdgeHistogram snaked_hist = MeasureEdgeHistogram(*snaked);
  EXPECT_EQ(snaked_hist.NumDiagonal(), 0u);
  EXPECT_EQ(plain_hist.Total(), schema->num_cells() - 1);
  EXPECT_EQ(snaked_hist.Total(), schema->num_cells() - 1);

  // 3. Generalized Lemma-2 consistency of every measured histogram.
  EXPECT_TRUE(IsConsistentHistogram(*schema, plain_hist));
  EXPECT_TRUE(IsConsistentHistogram(*schema, snaked_hist));

  // 4. Analytic class costs match measured ones exactly.
  const ClassCostTable plain_measured =
      CostsFromHistogram(*schema, plain_hist);
  const ClassCostTable snaked_measured =
      CostsFromHistogram(*schema, snaked_hist);
  const ClassCostTable plain_analytic =
      AnalyticPathCosts(*schema, path).value();
  const ClassCostTable snaked_analytic =
      AnalyticSnakedPathCosts(*schema, path).value();
  for (uint64_t i = 0; i < lat.size(); ++i) {
    const QueryClass cls = lat.ClassAt(i);
    EXPECT_EQ(plain_measured.Avg(cls), plain_analytic.Avg(cls))
        << path.ToString() << " " << cls.ToString();
    EXPECT_EQ(snaked_measured.Avg(cls), snaked_analytic.Avg(cls))
        << path.ToString() << " " << cls.ToString();
    // 5. Snaking never increases any class cost.
    EXPECT_LE(snaked_measured.AvgDouble(cls),
              plain_measured.AvgDouble(cls) + 1e-9);
  }

  // 6. DP optimality against this random path, and the snaked-DP relation.
  const auto dp = FindOptimalLatticePath(mu).value();
  EXPECT_LE(dp.cost, ExpectedPathCost(mu, path) + 1e-9);
  const auto snaked_dp = FindOptimalSnakedLatticePath(mu).value();
  EXPECT_LE(snaked_dp.cost, ExpectedSnakedPathCost(mu, path) + 1e-9);
  EXPECT_LE(snaked_dp.cost, ExpectedSnakedPathCost(mu, dp.path) + 1e-9);
  EXPECT_LT(ExpectedSnakedPathCost(mu, dp.path), 2.0 * snaked_dp.cost);
}

TEST_P(RandomizedTest, StorageInvariants) {
  Rng rng(GetParam() * 7919);
  auto schema = RandomSchema(&rng, 2048);
  auto facts = std::make_shared<FactTable>(schema);
  const uint64_t records = 1 + rng.Below(6 * schema->num_cells());
  for (uint64_t r = 0; r < records; ++r) {
    facts->AddRecord(schema->Unflatten(rng.Below(schema->num_cells())), 1.0);
  }
  const QueryClassLattice lat(*schema);
  const LatticePath path = RandomPath(lat, &rng);
  auto order = PathOrder::Make(schema, path, rng.Chance(0.5)).value();

  const StorageConfig config{64 + rng.Below(512), 16};
  const auto layout =
      PackedLayout::Pack(std::move(order), facts, config).value();

  // Conservation: every record lands exactly once; page spans are ordered.
  uint64_t total = 0;
  for (uint64_t rank = 0; rank < layout.linearization().num_cells(); ++rank) {
    total += layout.CellRecords(rank);
    if (!layout.CellEmpty(rank)) {
      EXPECT_LE(layout.CellFirstPage(rank), layout.CellLastPage(rank));
      EXPECT_LT(layout.CellLastPage(rank), layout.num_pages());
    }
  }
  EXPECT_EQ(total, facts->total_records());
  // Page count bounds: between perfect packing and one page per record.
  const uint64_t per_page = config.RecordsPerPage();
  EXPECT_GE(layout.num_pages(), CeilDiv(records, per_page));
  EXPECT_LE(layout.num_pages(), records);

  // Exact class measurement: whole-grid query reads every page once.
  const IoSimulator sim(layout);
  const ClassIoStats top = sim.MeasureClass(lat.Top());
  EXPECT_EQ(top.num_queries, 1u);
  EXPECT_EQ(top.total_pages, layout.num_pages());
  EXPECT_EQ(top.total_seeks, 1u);

  // Leaf-class query counts: non-empty queries == occupied cells.
  const ClassIoStats bottom = sim.MeasureClass(lat.Bottom());
  EXPECT_EQ(bottom.num_nonempty, facts->NumOccupiedCells());
}

// The exhaustive cousin of invariant 6: on lattices small enough to
// enumerate, the DP optima must beat *every* monotone path, not just the
// random one drawn above — and must coincide with the enumerated minimum.
TEST_P(RandomizedTest, DpOptimaBeatEveryEnumeratedPath) {
  Rng rng(GetParam() * 104729);
  auto schema = RandomSchema(&rng, 4096);
  const QueryClassLattice lat(*schema);
  const Workload mu = Workload::Random(lat, &rng);

  const auto all = EnumerateAllPaths(lat).value();
  ASSERT_FALSE(all.empty());
  const auto dp = FindOptimalLatticePath(mu).value();
  const auto snaked_dp = FindOptimalSnakedLatticePath(mu).value();

  double best_plain = ExpectedPathCost(mu, all.front());
  double best_snaked = ExpectedSnakedPathCost(mu, all.front());
  for (const LatticePath& path : all) {
    const double plain = ExpectedPathCost(mu, path);
    const double snaked = ExpectedSnakedPathCost(mu, path);
    EXPECT_LE(dp.cost, plain + 1e-9) << path.ToString();
    EXPECT_LE(snaked_dp.cost, snaked + 1e-9) << path.ToString();
    best_plain = std::min(best_plain, plain);
    best_snaked = std::min(best_snaked, snaked);
  }
  // The DP is not merely a lower bound: it attains the enumerated minimum.
  EXPECT_NEAR(dp.cost, best_plain, 1e-9);
  EXPECT_NEAR(snaked_dp.cost, best_snaked, 1e-9);
}

// Theorem-2 machinery end to end: measure a random strategy's CV on the
// paper's binary schema, strip diagonals, sandwich down to snaked-path
// vectors, and check every structural promise along the way.
TEST_P(RandomizedTest, SandwichLeavesAreConsistentSnakedPathCVs) {
  Rng rng(GetParam() * 6151);
  const int n = 1 + static_cast<int>(rng.Below(3));
  std::vector<Hierarchy> dims;
  for (int d = 0; d < 2; ++d) {
    dims.push_back(Hierarchy::Uniform("d" + std::to_string(d),
                                      std::vector<uint64_t>(n, 2))
                       .value());
  }
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Make("binary", std::move(dims)).value());
  const QueryClassLattice lat(*schema);

  const LatticePath path = RandomPath(lat, &rng);
  auto order = PathOrder::Make(schema, path, false).value();
  const BinaryCV measured =
      BinaryCV::FromHistogram(MeasureEdgeHistogram(*order)).value();
  ASSERT_TRUE(IsConsistent(measured)) << measured.ToString();

  const BinaryCV nd = EliminateDiagonals(measured).value();
  ASSERT_TRUE(nd.IsNonDiagonal());
  ASSERT_TRUE(IsConsistent(nd)) << nd.ToString();

  const auto leaves = SandwichToSnakedPaths(nd).value();
  ASSERT_FALSE(leaves.empty());
  for (const BinaryCV& leaf : leaves) {
    EXPECT_TRUE(IsConsistent(leaf)) << leaf.ToString();
    EXPECT_TRUE(IsSnakedPathCV(leaf)) << leaf.ToString();
  }

  // The sandwich guarantee: on any workload, some leaf costs no more than
  // the (diagonal-free) input, and diagonal elimination costs nothing.
  for (int trial = 0; trial < 4; ++trial) {
    const Workload mu = Workload::Random(lat, &rng);
    EXPECT_LE(nd.CostMu(mu), measured.CostMu(mu) + 1e-9);
    double best = leaves.front().CostMu(mu);
    for (const BinaryCV& leaf : leaves) {
      best = std::min(best, leaf.CostMu(mu));
    }
    EXPECT_LE(best, nd.CostMu(mu) + 1e-9) << nd.ToString();
  }
}

bool SameBits(double x, double y) {
  uint64_t bx = 0;
  uint64_t by = 0;
  std::memcpy(&bx, &x, sizeof(bx));
  std::memcpy(&by, &y, sizeof(by));
  return bx == by;
}

bool SameRecommendation(const Recommendation& a, const Recommendation& b) {
  if (!(a.optimal_path == b.optimal_path) ||
      !(a.optimal_snaked_path == b.optimal_snaked_path) ||
      a.ranked.size() != b.ranked.size()) {
    return false;
  }
  if (!SameBits(a.optimal_path_cost, b.optimal_path_cost) ||
      !SameBits(a.snaked_optimal_cost, b.snaked_optimal_cost) ||
      !SameBits(a.optimal_snaked_cost, b.optimal_snaked_cost)) {
    return false;
  }
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    if (a.ranked[i].name != b.ranked[i].name ||
        !SameBits(a.ranked[i].expected_cost, b.ranked[i].expected_cost)) {
      return false;
    }
  }
  return true;
}

// Incremental advise on random schemas: warm answers must be bit-identical
// to cold ones, and a zero-drift re-advise must hit the caches completely.
TEST_P(RandomizedTest, IncrementalAdviseMatchesColdBitForBit) {
  Rng rng(GetParam() * 31337);
  auto schema = RandomSchema(&rng, 1024);
  const QueryClassLattice lat(*schema);
  const ClusteringAdvisor advisor(schema);
  const Workload mu = Workload::Random(lat, &rng);

  EvaluationRequest request{mu};
  request.num_threads = 1;

  const Recommendation cold = advisor.Advise(request).value();
  IncrementalAdvisorState state;
  const Recommendation warm =
      advisor.AdviseIncremental(request, &state).value();
  EXPECT_TRUE(SameRecommendation(cold, warm));
  EXPECT_GT(state.last_cost_evaluations, 0u);

  // Same workload again: everything is served from the caches.
  const Recommendation again =
      advisor.AdviseIncremental(request, &state).value();
  EXPECT_TRUE(SameRecommendation(cold, again));
  EXPECT_EQ(state.last_cost_evaluations, 0u);
  EXPECT_EQ(state.last_dp_misses, 0u);
  EXPECT_GT(state.last_cost_hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace snakes
