// Fuzzing for src/service: random malformed tenant specs, byte-soup textual
// requests, and hostile typed queries must come back as error Statuses —
// never crashes or UB. Mirrors query_parser_fuzz_test.cc and runs under the
// sanitizer legs of tools/check.sh.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "hierarchy/dimension_table.h"
#include "hierarchy/star_schema.h"
#include "lattice/grid_query.h"
#include "obs/flight_recorder.h"
#include "service/service.h"
#include "service/telemetry.h"
#include "storage/fact_table.h"
#include "storage/pager.h"
#include "util/rng.h"

namespace snakes {
namespace {

struct FuzzTenant {
  std::shared_ptr<const StarSchema> schema;
  std::shared_ptr<const FactTable> facts;
  std::vector<DimensionTable> tables;
};

/// A random labeled schema (1..3 dims, 1..2 levels, fanouts 2..3) plus a
/// sparse fact table — the same shape family query_parser_fuzz_test uses,
/// wrapped for service registration.
FuzzTenant RandomTenant(Rng* rng) {
  const int num_dims = 1 + static_cast<int>(rng->Below(3));
  std::vector<Hierarchy> hierarchies;
  std::vector<DimensionTable> tables;
  for (int d = 0; d < num_dims; ++d) {
    const int levels = 1 + static_cast<int>(rng->Below(2));
    std::vector<uint64_t> fanouts;
    for (int l = 0; l < levels; ++l) fanouts.push_back(2 + rng->Below(2));
    Hierarchy h =
        Hierarchy::Uniform("dim" + std::to_string(d), fanouts).value();
    std::vector<std::vector<std::string>> labels(
        static_cast<size_t>(levels) + 1);
    for (int l = 0; l <= levels; ++l) {
      for (uint64_t b = 0; b < h.num_blocks(l); ++b) {
        labels[static_cast<size_t>(l)].push_back(
            "d" + std::to_string(d) + "l" + std::to_string(l) + "b" +
            std::to_string(b));
      }
    }
    tables.push_back(DimensionTable::Make(h, std::move(labels)).value());
    hierarchies.push_back(std::move(h));
  }
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Make("fuzz", hierarchies).value());
  auto facts = std::make_shared<FactTable>(schema);
  for (CellId id = 0; id < schema->num_cells(); ++id) {
    if (rng->Chance(0.7)) {
      facts->AddRecord(schema->Unflatten(id), rng->NextDouble());
    }
  }
  return {std::move(schema), std::move(facts), std::move(tables)};
}

ServiceConfig FuzzConfig() {
  ServiceConfig config;
  config.recluster_on_epoch_close = false;
  config.recluster.strategies = {"row-major"};
  config.storage = StorageConfig{128, 30};
  return config;
}

class ServiceFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ServiceFuzzTest, MalformedSpecsReturnErrorsNotCrashes) {
  Rng rng(0x5E9C + static_cast<uint64_t>(GetParam()) * 7919);
  FuzzTenant t = RandomTenant(&rng);
  AdvisorService service(FuzzConfig());

  // Hostile specs: every one must fail with a Status, not die.
  {
    TenantSpec spec;  // everything missing
    EXPECT_FALSE(service.RegisterTenant(std::move(spec)).ok());
  }
  {
    TenantSpec spec;
    spec.name = "t";  // schema missing
    spec.facts = t.facts;
    EXPECT_FALSE(service.RegisterTenant(std::move(spec)).ok());
  }
  {
    TenantSpec spec;
    spec.name = "t";
    spec.schema = t.schema;
    spec.tables = t.tables;
    spec.tables.pop_back();  // table count mismatch (num_dims >= 1)
    if (spec.tables.empty() && t.schema->num_dims() == 1) {
      // Empty tables are legal (textual surface disabled); skip this shape.
    } else {
      EXPECT_FALSE(service.RegisterTenant(std::move(spec)).ok());
    }
  }

  // A good spec still registers afterwards — failures leave no debris.
  TenantSpec good;
  good.name = "t";
  good.schema = t.schema;
  good.facts = t.facts;
  good.tables = t.tables;
  ASSERT_TRUE(service.RegisterTenant(std::move(good)).ok());
  EXPECT_EQ(service.num_tenants(), 1u);
}

TEST_P(ServiceFuzzTest, ByteSoupDispatchNeverCrashes) {
  Rng rng(0xD15F + static_cast<uint64_t>(GetParam()) * 104729);
  FuzzTenant t = RandomTenant(&rng);
  AdvisorService service(FuzzConfig());
  TenantSpec spec;
  spec.name = "t";
  spec.schema = t.schema;
  spec.facts = t.facts;
  spec.tables = t.tables;
  const TenantId id = service.RegisterTenant(std::move(spec)).value();

  // Structured malformations.
  const std::vector<std::string> malformed = {
      "",
      " ",
      "\t\t",
      "advisee",
      "ADVISE",
      "advise extra-garbage",  // advise takes no payload; extra text is a
                               // different (unknown) verb? no: verb is
                               // "advise", payload ignored — must not crash
      "ingest",
      "ingest =",
      "ingest dim0=",
      "ingest nosuchdim=x",
      "query",
      "query \"",
      "query dim0=nosuchlabel",
      "measure dim0==x",
      "end-epoch twice",
      "recluster recluster",
      "status status status",
      "backend nosuchbackend",
      "backend PACKED",  // names are case-sensitive lowercase
      "backend micro partition",
      "backend packed extra",
      "unknown-verb payload",
  };
  for (const std::string& request : malformed) {
    const Result<std::string> served = service.Dispatch("t", request);
    (void)served;  // any Status is fine; crashing is the failure mode
  }
  // Unknown tenants always come back NotFound.
  EXPECT_FALSE(service.Dispatch("ghost", "status").ok());
  EXPECT_FALSE(service.Dispatch("", "advise").ok());

  // Byte soup.
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789 .=\"'\t-";
  for (int trial = 0; trial < 60; ++trial) {
    std::string request;
    const uint64_t len = rng.Below(48);
    for (uint64_t i = 0; i < len; ++i) {
      request += alphabet[rng.Below(alphabet.size())];
    }
    const Result<std::string> served = service.Dispatch("t", request);
    (void)served;
  }

  // The backend verb: bare form reports, valid switches flip live (the
  // repack happens under the tenant lock), garbage names are clean errors.
  EXPECT_EQ(service.Dispatch("t", "backend").value(), "backend packed");
  for (int flip = 0; flip < 8; ++flip) {
    const char* kind = flip % 2 == 0 ? "micropartition" : "packed";
    const Result<std::string> switched =
        service.Dispatch("t", std::string("backend ") + kind);
    ASSERT_TRUE(switched.ok()) << switched.status().ToString();
    EXPECT_EQ(switched.value(), std::string("backend ") + kind);
    EXPECT_FALSE(service.Dispatch("t", "backend columnstore").ok());
  }
  EXPECT_EQ(service.Dispatch("t", "backend").value(), "backend packed");

  // The service survived it all: a well-formed request still works.
  EXPECT_TRUE(service.Dispatch("t", "status").ok());
  EXPECT_TRUE(service.Dispatch("t", "advise").ok());
  (void)id;
}

TEST_P(ServiceFuzzTest, HostileTypedQueriesReturnErrorsNotCrashes) {
  Rng rng(0xBEEF + static_cast<uint64_t>(GetParam()) * 7919);
  FuzzTenant t = RandomTenant(&rng);
  AdvisorService service(FuzzConfig());
  TenantSpec spec;
  spec.name = "t";
  spec.schema = t.schema;
  spec.facts = t.facts;
  const TenantId id = service.RegisterTenant(std::move(spec)).value();
  const int num_dims = t.schema->num_dims();

  for (int trial = 0; trial < 80; ++trial) {
    // Random (often invalid) dims, levels, and blocks. Valid draws are
    // fine — the point is that invalid ones become Statuses.
    GridQuery query;
    const int dims = 1 + static_cast<int>(rng.Below(kMaxDimensions));
    query.cls = QueryClass(dims);
    query.block.resize(static_cast<size_t>(dims));
    for (int d = 0; d < dims; ++d) {
      query.cls.set_level(d, static_cast<int>(rng.Below(6)) - 1);
      query.block[static_cast<size_t>(d)] = rng.Below(64);
    }
    (void)service.Query(id, query);
    (void)service.Measure(id, query);
    (void)service.Ingest(id, query);
    // Unknown tenant ids too.
    (void)service.Query(id + 1 + rng.Below(10), query);
  }
  (void)num_dims;

  // Still serving.
  EXPECT_TRUE(service.Advise(id).ok());
}

TEST_P(ServiceFuzzTest, TelemetryVerbSurvivesMalformedArgs) {
  Rng rng(0x7E1E + static_cast<uint64_t>(GetParam()) * 7919);
  FuzzTenant t = RandomTenant(&rng);
  AdvisorService service(FuzzConfig());
  TenantSpec spec;
  spec.name = "t";
  spec.schema = t.schema;
  spec.facts = t.facts;
  ASSERT_TRUE(service.RegisterTenant(std::move(spec)).ok());

  // Structured malformations of the telemetry verb: every one must come
  // back as a Status (ok or error), never a crash.
  const std::vector<std::string> malformed = {
      "telemetry",          "telemetry json",     "telemetry prom",
      "telemetry prometheus", "telemetry recorder", "telemetry advance",
      "telemetry JSON",     "telemetry  json",    "telemetry json extra",
      "telemetry bogus",    "telemetry \"",       "telemetry =",
      "telemetry telemetry", "telemetry\tprom",   "telemetryjson",
  };
  for (const std::string& request : malformed) {
    (void)service.Dispatch("t", request);
  }
  EXPECT_FALSE(service.Dispatch("ghost", "telemetry").ok());

  // Byte soup payloads.
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789 .=\"'\t-";
  for (int trial = 0; trial < 40; ++trial) {
    std::string request = "telemetry ";
    const uint64_t len = rng.Below(24);
    for (uint64_t i = 0; i < len; ++i) {
      request += alphabet[rng.Below(alphabet.size())];
    }
    (void)service.Dispatch("t", request);
  }

  // Still serving, and the malformed traffic itself is visible in the dump.
  const std::string json = service.Dispatch("t", "telemetry").value();
  EXPECT_NE(json.find("\"recorder\""), std::string::npos);
}

TEST_P(ServiceFuzzTest, ConcurrentTelemetryDumpsDuringReclusterStorm) {
  Rng rng(0xD0D0 + static_cast<uint64_t>(GetParam()) * 104729);
  FuzzTenant t = RandomTenant(&rng);
  ServiceConfig config = FuzzConfig();
  config.recluster_on_epoch_close = true;
  config.telemetry.recorder_capacity = 64;  // wrap constantly under load
  AdvisorService service(config);
  TenantSpec spec;
  spec.name = "t";
  spec.schema = t.schema;
  spec.facts = t.facts;
  const TenantId id = service.RegisterTenant(std::move(spec)).value();
  const std::shared_ptr<const StarSchema> schema = t.schema;

  // Writers churn epochs (each close fires a background recluster);
  // dumpers hammer every telemetry surface concurrently.
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&service, schema, id, w]() {
      const int dims = schema->num_dims();
      for (int i = 0; i < 20; ++i) {
        GridQuery query;  // a valid leaf-level point query
        query.cls = QueryClass(dims);
        query.block.resize(static_cast<size_t>(dims));
        for (int d = 0; d < dims; ++d) {
          query.cls.set_level(d, 0);
          query.block[static_cast<size_t>(d)] =
              static_cast<uint64_t>(w + i) % schema->extent(d);
        }
        (void)service.Ingest(id, query);
        (void)service.EndEpoch(id);
      }
    });
  }
  for (int d = 0; d < 2; ++d) {
    threads.emplace_back([&service]() {
      for (int i = 0; i < 30; ++i) {
        const char* form = i % 3 == 0 ? "telemetry"
                           : i % 3 == 1 ? "telemetry prom"
                                        : "telemetry recorder";
        (void)service.Dispatch("t", form);
        const TelemetrySnapshot snap = service.Telemetry();
        uint64_t prev = 0;
        for (const RequestRecord& r : snap.requests) {
          ASSERT_GT(r.id, prev) << "torn or duplicated record";
          prev = r.id;
          ASSERT_LE(r.start_ns, r.finish_ns);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  service.Shutdown();
  EXPECT_TRUE(service.Dispatch("t", "telemetry").ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServiceFuzzTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace snakes
