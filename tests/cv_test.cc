#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "cost/edge_model.h"
#include "curves/hilbert.h"
#include "curves/path_order.h"
#include "curves/row_major.h"
#include "curves/z_curve.h"
#include "cv/characteristic_vector.h"
#include "cv/consistency.h"
#include "cv/sandwich.h"
#include "cv/transform.h"
#include "hierarchy/star_schema.h"
#include "lattice/workload.h"
#include "path/lattice_path.h"
#include "util/rng.h"

namespace snakes {
namespace {

std::shared_ptr<const StarSchema> BinarySchema(int n) {
  return std::make_shared<StarSchema>(StarSchema::Symmetric(2, n, 2).value());
}

BinaryCV MeasureCV(const Linearization& lin) {
  return BinaryCV::FromHistogram(MeasureEdgeHistogram(lin)).value();
}

TEST(BinaryCVTest, AccessorsAndToString) {
  auto cv = BinaryCV::Make(2, {8, 4}, {2, 1}).value();
  EXPECT_EQ(cv.n(), 2);
  EXPECT_EQ(cv.cells(), 16u);
  EXPECT_EQ(cv.a(1), 8u);
  EXPECT_EQ(cv.b(2), 1u);
  EXPECT_EQ(cv.PrefixA(2), 12u);
  EXPECT_EQ(cv.TotalEdges(), 15u);
  EXPECT_TRUE(cv.IsNonDiagonal());
  EXPECT_EQ(cv.ToString(), "(8,4;2,1)");

  auto diag = BinaryCV::Make(2, {8, 4}, {0, 0}, {0, 2, 0, 1}).value();
  EXPECT_FALSE(diag.IsNonDiagonal());
  EXPECT_EQ(diag.d(1, 2), 2u);
  EXPECT_EQ(diag.PrefixD(2, 2), 3u);
  EXPECT_EQ(diag.ToString(), "(8,4;0,0;0,2,0,1)");
}

TEST(BinaryCVTest, MakeValidation) {
  EXPECT_FALSE(BinaryCV::Make(0, {}, {}).ok());
  EXPECT_FALSE(BinaryCV::Make(2, {8}, {2, 1}).ok());
  EXPECT_FALSE(BinaryCV::Make(2, {8, 4}, {2, 1}, {1}).ok());
}

TEST(BinaryCVTest, FromHistogramMatchesPaperCVs) {
  auto schema = BinarySchema(2);
  const QueryClassLattice lat(*schema);
  // CV(P1): the paper writes (8,4;0,0;0,2;0,1) labelling the fast dimension
  // "A"; in our dimension order (dim 0 = outer), the axis edges land in b.
  const LatticePath p1 = LatticePath::FromSteps(lat, {1, 1, 0, 0}).value();
  auto lin = PathOrder::Make(schema, p1, false).value();
  const BinaryCV cv = MeasureCV(*lin);
  EXPECT_EQ(cv.b(1), 8u);
  EXPECT_EQ(cv.b(2), 4u);
  EXPECT_EQ(cv.a(1), 0u);
  EXPECT_EQ(cv.a(2), 0u);
  EXPECT_EQ(cv.d(1, 2), 2u);
  EXPECT_EQ(cv.d(2, 2), 1u);

  // Hilbert, paper orientation: (6,2;6,1).
  auto h = HilbertCurve::Make(schema, true).value();
  const BinaryCV hcv = MeasureCV(*h);
  EXPECT_EQ(hcv.ToString(), "(6,2;6,1)");
}

TEST(BinaryCVTest, SnakedPathCVsArePowersOfTwo) {
  auto schema = BinarySchema(2);
  const QueryClassLattice lat(*schema);
  const LatticePath p1 = LatticePath::FromSteps(lat, {1, 1, 0, 0}).value();
  auto lin = PathOrder::Make(schema, p1, true).value();
  EXPECT_EQ(MeasureCV(*lin).ToString(), "(2,1;8,4)");
  const LatticePath p2 = LatticePath::FromSteps(lat, {1, 0, 1, 0}).value();
  auto lin2 = PathOrder::Make(schema, p2, true).value();
  EXPECT_EQ(MeasureCV(*lin2).ToString(), "(4,1;8,2)");
}

TEST(BinaryCVTest, ExtendedCostMatchesEdgeModel) {
  // The extended cost of a *measured* CV equals the edge-model class costs.
  auto schema = BinarySchema(2);
  auto z = ZCurve::Make(schema).value();
  const BinaryCV cv = MeasureCV(*z);
  const ClassCostTable costs = MeasureClassCosts(*z);
  for (int i = 0; i <= 2; ++i) {
    for (int j = 0; j <= 2; ++j) {
      EXPECT_EQ(cv.AvgClassCost(i, j), costs.Avg(QueryClass{i, j}));
    }
  }
}

// ---------------------------------------------------------------------------
// Lemma 2 / consistency.
// ---------------------------------------------------------------------------

TEST(ConsistencyTest, MeasuredStrategiesAreAlwaysConsistent) {
  for (int n : {2, 3}) {
    auto schema = BinarySchema(n);
    const QueryClassLattice lat(*schema);
    std::vector<std::unique_ptr<Linearization>> strategies;
    strategies.push_back(ZCurve::Make(schema).value());
    strategies.push_back(GrayCurve::Make(schema).value());
    strategies.push_back(HilbertCurve::Make(schema).value());
    for (auto& rm : AllRowMajorOrders(schema)) strategies.push_back(std::move(rm));
    for (const LatticePath& path : EnumerateAllPaths(lat).value()) {
      strategies.push_back(PathOrder::Make(schema, path, false).value());
      strategies.push_back(PathOrder::Make(schema, path, true).value());
    }
    for (const auto& lin : strategies) {
      const BinaryCV cv = MeasureCV(*lin);
      EXPECT_TRUE(IsConsistent(cv))
          << lin->name() << ": "
          << ConsistencyViolations(cv).front();
    }
  }
}

TEST(ConsistencyTest, ViolationsAreReported) {
  // Too many A_1 edges.
  auto cv = BinaryCV::Make(2, {9, 0}, {4, 2}).value();
  EXPECT_FALSE(IsConsistent(cv));
  EXPECT_FALSE(ConsistencyViolations(cv).empty());
  // Wrong total.
  auto cv2 = BinaryCV::Make(2, {8, 4}, {2, 0}).value();
  EXPECT_FALSE(IsConsistent(cv2));
}

TEST(ConsistencyTest, GeneralizedHistogramCheck) {
  // Every strategy on an arbitrary (non-binary, 3-D) schema satisfies the
  // generalized Lemma-2 bounds.
  auto a = Hierarchy::Uniform("a", {3, 2}).value();
  auto b = Hierarchy::Uniform("b", {4}).value();
  auto c = Hierarchy::Uniform("c", {2, 3}).value();
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Make("gen", {a, b, c}).value());
  const QueryClassLattice lat(*schema);
  for (const LatticePath& path : EnumerateAllPaths(lat).value()) {
    for (bool snaked : {false, true}) {
      auto lin = PathOrder::Make(schema, path, snaked).value();
      EXPECT_TRUE(IsConsistentHistogram(*schema, MeasureEdgeHistogram(*lin)))
          << lin->name();
    }
  }
}

TEST(ConsistencyTest, PrecedesOrder) {
  // The paper's example chain: (8,4;2,1) <= (1,11;1,2) <= (0,12;1,2).
  auto u = BinaryCV::Make(2, {8, 4}, {2, 1}).value();
  auto v = BinaryCV::Make(2, {1, 11}, {1, 2}).value();
  auto w = BinaryCV::Make(2, {0, 12}, {1, 2}).value();
  EXPECT_TRUE(PrecedesOrEquals(u, v));
  EXPECT_TRUE(PrecedesOrEquals(v, w));
  EXPECT_TRUE(PrecedesOrEquals(u, w));
  EXPECT_FALSE(PrecedesOrEquals(v, u));
  EXPECT_TRUE(PrecedesOrEquals(u, u));
}

TEST(MinimalizeTest, Example3Minimalization) {
  // Example 3: (24,9,5;21,3,1) minimalizes to (27,8,3;21,3,1).
  auto cv = BinaryCV::Make(3, {24, 9, 5}, {21, 3, 1}).value();
  ASSERT_TRUE(IsConsistent(cv));
  const BinaryCV minimal = Minimalize(cv).value();
  EXPECT_EQ(minimal.ToString(), "(27,8,3;21,3,1)");
}

TEST(MinimalizeTest, NeverIncreasesCostOnAnyWorkload) {
  auto lat22 = QueryClassLattice::FromFanouts({{2, 2}, {2, 2}}).value();
  Rng rng(31);
  // Use measured CVs of real strategies as inputs.
  auto schema = BinarySchema(2);
  auto h = HilbertCurve::Make(schema).value();
  auto g = GrayCurve::Make(schema).value();
  for (const Linearization* lin :
       {static_cast<const Linearization*>(h.get()),
        static_cast<const Linearization*>(g.get())}) {
    const BinaryCV cv = MeasureCV(*lin);
    if (!cv.IsNonDiagonal()) continue;
    const BinaryCV minimal = Minimalize(cv).value();
    for (int trial = 0; trial < 25; ++trial) {
      const Workload mu = Workload::Random(lat22, &rng);
      EXPECT_LE(minimal.CostMu(mu), cv.CostMu(mu) + 1e-12) << lin->name();
    }
  }
}

// ---------------------------------------------------------------------------
// Lemma 4: diagonal elimination.
// ---------------------------------------------------------------------------

TEST(TransformTest, Example3DiagonalElimination) {
  // v_in = (20,5,1;21,3,1;d11=4,d22=4,d33=4) -> (24,9,5;21,3,1).
  std::vector<uint64_t> diag(9, 0);
  diag[0] = 4;  // d11
  diag[4] = 4;  // d22
  diag[8] = 4;  // d33
  auto cv = BinaryCV::Make(3, {20, 5, 1}, {21, 3, 1}, diag).value();
  ASSERT_TRUE(IsConsistent(cv));
  const BinaryCV out = EliminateDiagonals(cv).value();
  EXPECT_EQ(out.ToString(), "(24,9,5;21,3,1)");
  EXPECT_TRUE(out.IsNonDiagonal());
  EXPECT_TRUE(IsConsistent(out));
}

TEST(TransformTest, MeasuredDiagonalStrategiesEliminate) {
  for (int n : {2, 3}) {
    auto schema = BinarySchema(n);
    const QueryClassLattice lat(*schema);
    for (const LatticePath& path : EnumerateAllPaths(lat).value()) {
      auto lin = PathOrder::Make(schema, path, false).value();
      const BinaryCV cv = MeasureCV(*lin);
      const BinaryCV out = EliminateDiagonals(cv).value();
      EXPECT_TRUE(out.IsNonDiagonal());
      EXPECT_TRUE(IsConsistent(out));
      // Prefix coverage only grows, so cost can only drop: check per class.
      for (int i = 0; i <= n; ++i) {
        for (int j = 0; j <= n; ++j) {
          EXPECT_LE(out.AvgClassCost(i, j).ToDouble(),
                    cv.AvgClassCost(i, j).ToDouble() + 1e-12);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Lemma 3 and Theorem 2: snaked path CVs and the sandwich construction.
// ---------------------------------------------------------------------------

TEST(SandwichTest, SnakedPathFromCVRoundTrip) {
  auto schema = BinarySchema(3);
  const QueryClassLattice lat(*schema);
  for (const LatticePath& path : EnumerateAllPaths(lat).value()) {
    auto lin = PathOrder::Make(schema, path, true).value();
    const BinaryCV cv = MeasureCV(*lin);
    EXPECT_TRUE(IsSnakedPathCV(cv)) << cv.ToString();
    const LatticePath recovered = SnakedPathFromCV(cv).value();
    EXPECT_EQ(recovered.steps(), path.steps()) << cv.ToString();
  }
}

TEST(SandwichTest, RejectsNonSnakedCVs) {
  // Hilbert: non-diagonal but not a snaked path.
  auto schema = BinarySchema(2);
  auto h = HilbertCurve::Make(schema).value();
  EXPECT_FALSE(IsSnakedPathCV(MeasureCV(*h)));
  // Powers of two but non-decreasing per dimension.
  auto bad = BinaryCV::Make(2, {8, 4}, {1, 2}).value();
  EXPECT_FALSE(IsSnakedPathCV(bad));
}

TEST(SandwichTest, Example3SandwichSteps) {
  // u = (27,8,3;21,3,1) sandwiched by (16,8,3;32,3,1) and (32,8,3;16,3,1);
  // u1 = (32,8,3;16,3,1) sandwiched by (32,8,2;16,4,1) and (32,8,4;16,2,1).
  auto u = BinaryCV::Make(3, {27, 8, 3}, {21, 3, 1}).value();
  const auto pair1 = SandwichOnce(u).value();
  EXPECT_EQ(pair1.first.ToString(), "(16,8,3;32,3,1)");
  EXPECT_EQ(pair1.second.ToString(), "(32,8,3;16,3,1)");
  const auto pair2 = SandwichOnce(pair1.second).value();
  EXPECT_EQ(pair2.first.ToString(), "(32,8,2;16,4,1)");
  EXPECT_EQ(pair2.second.ToString(), "(32,8,4;16,2,1)");
}

TEST(SandwichTest, SandwichPreservesCostSomewhere) {
  // One sandwich step: on every workload, at least one of the two vectors
  // costs no more than the input (the pivotal inequality in Theorem 2).
  auto lat = QueryClassLattice::FromFanouts(
                 {{2, 2, 2}, {2, 2, 2}})
                 .value();
  auto u = BinaryCV::Make(3, {27, 8, 3}, {21, 3, 1}).value();
  const auto pair = SandwichOnce(u).value();
  Rng rng(41);
  for (int trial = 0; trial < 100; ++trial) {
    const Workload mu = Workload::Random(lat, &rng);
    const double base = u.CostMu(mu);
    EXPECT_TRUE(pair.first.CostMu(mu) <= base + 1e-12 ||
                pair.second.CostMu(mu) <= base + 1e-12);
  }
}

TEST(SandwichTest, FullRecursionReachesSnakedPaths) {
  auto u = BinaryCV::Make(3, {27, 8, 3}, {21, 3, 1}).value();
  const auto leaves = SandwichToSnakedPaths(u).value();
  ASSERT_FALSE(leaves.empty());
  for (const BinaryCV& leaf : leaves) {
    EXPECT_TRUE(IsSnakedPathCV(leaf)) << leaf.ToString();
  }
  // And the sandwich guarantee: on every workload some leaf is at least as
  // cheap as the input.
  auto lat = QueryClassLattice::FromFanouts({{2, 2, 2}, {2, 2, 2}}).value();
  Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    const Workload mu = Workload::Random(lat, &rng);
    const double base = u.CostMu(mu);
    double best = 1e300;
    for (const BinaryCV& leaf : leaves) {
      best = std::min(best, leaf.CostMu(mu));
    }
    EXPECT_LE(best, base + 1e-12);
  }
}

TEST(SandwichTest, GlobalOptimalityPipelineOnDiagonalStrategy) {
  // End to end on Example 3's diagonal strategy: eliminate diagonals,
  // sandwich to snaked paths, and verify the Theorem-2 guarantee that some
  // snaked lattice path beats the diagonal strategy on every workload.
  std::vector<uint64_t> diag(9, 0);
  diag[0] = 4;
  diag[4] = 4;
  diag[8] = 4;
  auto s_d = BinaryCV::Make(3, {20, 5, 1}, {21, 3, 1}, diag).value();
  const BinaryCV nondiag = EliminateDiagonals(s_d).value();
  const auto leaves = SandwichToSnakedPaths(nondiag).value();
  ASSERT_FALSE(leaves.empty());
  auto lat = QueryClassLattice::FromFanouts({{2, 2, 2}, {2, 2, 2}}).value();
  Rng rng(47);
  for (int trial = 0; trial < 100; ++trial) {
    const Workload mu = Workload::Random(lat, &rng);
    double best = 1e300;
    for (const BinaryCV& leaf : leaves) {
      best = std::min(best, leaf.CostMu(mu));
    }
    EXPECT_LE(best, s_d.CostMu(mu) + 1e-12);
  }
}

TEST(SandwichTest, HilbertSandwichedBetweenTwoSnakedPaths) {
  // The conclusion's claim: Hilbert's cost is sandwiched between two fixed
  // snaked lattice paths on every workload. Minimalizing Hilbert's CV
  // (6,2;6,1) and sandwiching yields (4,2;8,1) and (8,2;4,1).
  auto schema = BinarySchema(2);
  auto h = HilbertCurve::Make(schema, true).value();
  const BinaryCV hcv = MeasureCV(*h);
  const auto leaves = SandwichToSnakedPaths(hcv).value();
  ASSERT_EQ(leaves.size(), 2u);
  std::vector<std::string> names{leaves[0].ToString(), leaves[1].ToString()};
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names[0], "(4,2;8,1)");
  EXPECT_EQ(names[1], "(8,2;4,1)");

  auto lat = QueryClassLattice::FromFanouts({{2, 2}, {2, 2}}).value();
  Rng rng(53);
  for (int trial = 0; trial < 100; ++trial) {
    const Workload mu = Workload::Random(lat, &rng);
    const double hilbert = hcv.CostMu(mu);
    const double lo = std::min(leaves[0].CostMu(mu), leaves[1].CostMu(mu));
    EXPECT_LE(lo, hilbert + 1e-12);
  }
}

}  // namespace
}  // namespace snakes
