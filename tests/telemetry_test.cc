// Tests for the advisor service's telemetry layer: the lock-free
// FlightRecorder (tear-free snapshots under concurrent writers, one-shot
// error hook), SloWindow rotation and quantile merging, the bounded Tracer
// with dropped-span accounting and request-id ("rid") span attribution,
// request-id propagation across the sync / batched / Dispatch / background
// recluster paths, the recluster decision audit log, the `telemetry`
// Dispatch verb (JSON + Prometheus exposition), and — via
// tests/interleave_driver.h — consistency of concurrent telemetry dumps
// taken during background epoch adoptions, with advice bit-identical
// whether telemetry sinks are attached or not.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/advisor.h"
#include "hierarchy/star_schema.h"
#include "lattice/grid_query.h"
#include "lattice/workload.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/slo_window.h"
#include "obs/trace.h"
#include "service/service.h"
#include "service/telemetry.h"
#include "storage/fact_table.h"
#include "interleave_driver.h"
#include "util/result.h"

namespace snakes {
namespace {

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

RequestRecord MakeRecord(uint64_t id) {
  RequestRecord r;
  r.id = id;
  r.tenant = id * 3;
  r.verb = static_cast<RequestVerb>(id % kNumRequestVerbs);
  r.status = StatusCode::kOk;
  r.enqueue_ns = id * 5;
  r.start_ns = id * 5 + 1;
  r.finish_ns = id * 5 + 2;
  r.pages = id * 7;
  r.partitions_pruned = id * 11;
  return r;
}

TEST(FlightRecorderTest, RoundTripsAllFields) {
  FlightRecorder recorder(8);
  RequestRecord in;
  in.id = 42;
  in.tenant = 3;
  in.verb = RequestVerb::kMeasure;
  in.status = StatusCode::kOutOfRange;
  in.enqueue_ns = 100;
  in.start_ns = 150;
  in.finish_ns = 400;
  in.pages = 12;
  in.partitions_pruned = 5;
  recorder.Record(in);

  const auto records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  const RequestRecord& out = records[0];
  EXPECT_EQ(out.id, 42u);
  EXPECT_EQ(out.tenant, 3u);
  EXPECT_EQ(out.verb, RequestVerb::kMeasure);
  EXPECT_EQ(out.status, StatusCode::kOutOfRange);
  EXPECT_EQ(out.enqueue_ns, 100u);
  EXPECT_EQ(out.start_ns, 150u);
  EXPECT_EQ(out.finish_ns, 400u);
  EXPECT_EQ(out.queue_ns(), 50u);
  EXPECT_EQ(out.compute_ns(), 250u);
  EXPECT_EQ(out.pages, 12u);
  EXPECT_EQ(out.partitions_pruned, 5u);
}

TEST(FlightRecorderTest, RingKeepsTheLastCapacityRecords) {
  FlightRecorder recorder(8);
  for (uint64_t id = 1; id <= 20; ++id) recorder.Record(MakeRecord(id));
  EXPECT_EQ(recorder.capacity(), 8u);
  EXPECT_EQ(recorder.recorded(), 20u);

  const auto records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 8u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].id, 13 + i);  // the last 8, sorted ascending
  }
}

TEST(FlightRecorderTest, SnapshotNeverReturnsTornRecords) {
  // Writers encode their record id in every payload field; a torn read
  // would mix two encodings and fail the consistency check. Capacity is
  // kept tiny so writers wrap constantly — the worst case for tearing.
  FlightRecorder recorder(32);
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 4000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> next_id{1};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&]() {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        recorder.Record(MakeRecord(next_id.fetch_add(1)));
      }
    });
  }

  std::thread reader([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      const auto records = recorder.Snapshot();
      uint64_t prev = 0;
      for (const RequestRecord& r : records) {
        EXPECT_GT(r.id, prev) << "ids must be strictly increasing";
        prev = r.id;
        // Internal consistency = untorn.
        EXPECT_EQ(r.tenant, r.id * 3);
        EXPECT_EQ(r.enqueue_ns, r.id * 5);
        EXPECT_EQ(r.pages, r.id * 7);
        EXPECT_EQ(r.partitions_pruned, r.id * 11);
      }
    }
  });

  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(recorder.recorded(), kWriters * kPerWriter);
}

TEST(FlightRecorderTest, ErrorHookFiresOnceOnFirstNonOkRecord) {
  FlightRecorder recorder(8);
  std::vector<uint64_t> fired;
  recorder.SetErrorHook(
      [&](const RequestRecord& r) { fired.push_back(r.id); });

  recorder.Record(MakeRecord(1));  // OK: no fire
  RequestRecord bad = MakeRecord(2);
  bad.status = StatusCode::kInvalidArgument;
  recorder.Record(bad);
  RequestRecord worse = MakeRecord(3);
  worse.status = StatusCode::kInternal;
  recorder.Record(worse);

  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 2u);
}

TEST(FlightRecorderTest, JsonDumpHasCapacityRecordedAndRequests) {
  FlightRecorder recorder(4);
  recorder.Record(MakeRecord(1));
  RequestRecord anonymous = MakeRecord(2);
  anonymous.tenant = kNoTenant;
  recorder.Record(anonymous);

  const std::string json = recorder.ToJson(/*pretty=*/false);
  EXPECT_NE(json.find("\"capacity\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"recorded\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"tenant\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"id\": 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SloWindow
// ---------------------------------------------------------------------------

TEST(SloWindowTest, CountsErrorsAndQuantilesPerVerb) {
  SloWindow window(4);
  for (int i = 0; i < 90; ++i) {
    window.Record(RequestVerb::kQuery, 1000, /*error=*/false);
  }
  for (int i = 0; i < 10; ++i) {
    window.Record(RequestVerb::kQuery, 1000, /*error=*/true);
  }
  window.Record(RequestVerb::kAdvise, 1u << 20, /*error=*/false);

  const auto snap = window.Snap();
  const auto& query =
      snap.verbs[static_cast<size_t>(RequestVerb::kQuery)];
  EXPECT_EQ(query.count, 100u);
  EXPECT_EQ(query.errors, 10u);
  EXPECT_DOUBLE_EQ(query.error_rate, 0.1);
  // 1000 lands in the bit-width-10 bucket [512, 1023]; the interpolated
  // quantile stays within it.
  EXPECT_GE(query.p50_ns, 512.0);
  EXPECT_LE(query.p50_ns, 1023.0);
  EXPECT_GE(query.p99_ns, 512.0);
  EXPECT_LE(query.p99_ns, 1023.0);

  const auto& advise =
      snap.verbs[static_cast<size_t>(RequestVerb::kAdvise)];
  EXPECT_EQ(advise.count, 1u);
  EXPECT_EQ(advise.errors, 0u);
  EXPECT_EQ(snap.total, 101u);
}

TEST(SloWindowTest, AdvanceRetiresOldSlicesAndMergesLiveOnes) {
  SloWindow window(3);
  window.Record(RequestVerb::kQuery, 100, false);
  window.Advance();
  window.Record(RequestVerb::kQuery, 100, false);

  // Both slices are still live: merged count covers both.
  auto snap = window.Snap();
  EXPECT_EQ(snap.verbs[static_cast<size_t>(RequestVerb::kQuery)].count, 2u);
  EXPECT_EQ(snap.advances, 1u);

  // Rotating through the remaining slices retires everything.
  window.Advance();
  window.Advance();
  window.Advance();
  snap = window.Snap();
  EXPECT_EQ(snap.verbs[static_cast<size_t>(RequestVerb::kQuery)].count, 0u);
  EXPECT_EQ(snap.total, 0u);
}

// ---------------------------------------------------------------------------
// Tracer bound + request-id span attribution
// ---------------------------------------------------------------------------

TEST(TracerBoundTest, DropsSpansBeyondCapacityAndCountsThem) {
  Tracer tracer(/*capacity=*/4);
  for (int i = 0; i < 7; ++i) {
    ScopedSpan span(&tracer, "s" + std::to_string(i));
  }
  EXPECT_EQ(tracer.capacity(), 4u);
  EXPECT_EQ(tracer.num_events(), 4u);
  EXPECT_EQ(tracer.dropped_spans(), 3u);
  // The earliest spans are the ones kept.
  const auto events = tracer.events();
  EXPECT_EQ(events[0].name, "s0");
  EXPECT_EQ(events[3].name, "s3");
}

TEST(TracerBoundTest, SpansRecordTheActiveRequestId) {
  Tracer tracer;
  {
    RequestContext ctx;
    ctx.id = 77;
    RequestContextScope scope(&ctx);
    ScopedSpan span(&tracer, "inner", "test");
  }
  {
    ScopedSpan span(&tracer, "outer", "test");  // no active request
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "rid");
  EXPECT_EQ(events[0].args[0].second, "77");
  EXPECT_TRUE(events[1].args.empty());
}

TEST(RequestContextTest, VerbNamesRoundTrip) {
  for (int v = 0; v < kNumRequestVerbs; ++v) {
    const auto verb = static_cast<RequestVerb>(v);
    EXPECT_EQ(ParseRequestVerb(RequestVerbName(verb)), verb);
  }
  EXPECT_EQ(ParseRequestVerb("no-such-verb"), RequestVerb::kUnknown);
}

// ---------------------------------------------------------------------------
// Service-level telemetry
// ---------------------------------------------------------------------------

std::shared_ptr<const StarSchema> SmallSchema() {
  auto a = Hierarchy::Uniform("a", {2, 2}).value();
  auto b = Hierarchy::Uniform("b", {2, 2}).value();
  return std::make_shared<StarSchema>(StarSchema::Make("s", {a, b}).value());
}

std::shared_ptr<const FactTable> DenseFacts(
    const std::shared_ptr<const StarSchema>& schema, uint64_t per_cell) {
  auto facts = std::make_shared<FactTable>(schema);
  CellCoord c;
  c.resize(2);
  for (uint64_t x = 0; x < 4; ++x) {
    for (uint64_t y = 0; y < 4; ++y) {
      c[0] = x;
      c[1] = y;
      for (uint64_t r = 0; r < per_cell; ++r) {
        facts->AddRecord(c, static_cast<double>(x + y));
      }
    }
  }
  return facts;
}

ServiceConfig SmallConfig() {
  ServiceConfig config;
  config.request_threads = 2;
  config.recluster_on_epoch_close = false;
  config.recluster.strategies = {"row-major"};
  config.storage = StorageConfig{256, 125};
  return config;
}

GridQuery MakeQuery(int l0, int l1, uint64_t b0, uint64_t b1) {
  GridQuery query;
  query.cls = QueryClass{l0, l1};
  query.block.resize(2);
  query.block[0] = b0;
  query.block[1] = b1;
  return query;
}

TenantId RegisterSimple(AdvisorService* service, const std::string& name) {
  TenantSpec spec;
  spec.name = name;
  spec.schema = SmallSchema();
  spec.facts = DenseFacts(spec.schema, 2);
  return service->RegisterTenant(std::move(spec)).value();
}

TEST(ServiceTelemetryTest, RequestIdsAreUniqueAcrossAllPaths) {
  MetricsRegistry metrics;
  Tracer tracer;
  ServiceConfig config = SmallConfig();
  config.obs = ObsSink{&metrics, &tracer};
  config.recluster_on_epoch_close = true;  // exercise background requests
  AdvisorService service(config);
  const TenantId id = RegisterSimple(&service, "t");

  // Sync surface.
  ASSERT_TRUE(service.Advise(id).ok());
  ASSERT_TRUE(service.Query(id, MakeQuery(2, 2, 0, 0)).ok());
  ASSERT_TRUE(service.Measure(id, MakeQuery(0, 2, 0, 0)).ok());
  // Batched surface.
  ASSERT_TRUE(service.SubmitQuery(id, MakeQuery(0, 2, 1, 0)).get().ok());
  ASSERT_TRUE(service.SubmitAdvise(id).get().ok());
  // Dispatch surface (including an error, which must also be recorded).
  ASSERT_TRUE(service.Dispatch("t", "status").ok());
  EXPECT_FALSE(service.Dispatch("t", "frobnicate").ok());
  // Epoch close fires a background recluster request.
  ASSERT_TRUE(service.Ingest(id, MakeQuery(0, 0, 1, 1)).ok());
  ASSERT_TRUE(service.EndEpoch(id).ok());
  service.Shutdown();  // drains the background job

  const TelemetrySnapshot snap = service.Telemetry();
  ASSERT_GE(snap.requests.size(), 9u);
  std::set<uint64_t> ids;
  uint64_t prev = 0;
  bool saw_background_recluster = false;
  bool saw_error = false;
  for (const RequestRecord& r : snap.requests) {
    EXPECT_GT(r.id, prev) << "dump ids must be strictly increasing";
    prev = r.id;
    ids.insert(r.id);
    EXPECT_LE(r.enqueue_ns, r.start_ns);
    EXPECT_LE(r.start_ns, r.finish_ns);
    if (r.verb == RequestVerb::kRecluster) saw_background_recluster = true;
    if (r.status != StatusCode::kOk) saw_error = true;
  }
  EXPECT_EQ(ids.size(), snap.requests.size());
  EXPECT_TRUE(saw_background_recluster);
  EXPECT_TRUE(saw_error);
  EXPECT_GT(metrics.Snapshot().counter("service.requests.completed"), 0u);
  EXPECT_GT(metrics.Snapshot().counter("service.requests.errors"), 0u);
}

TEST(ServiceTelemetryTest, SpansNestRequestVerbStorageUnderOneRid) {
  MetricsRegistry metrics;
  Tracer tracer;
  ServiceConfig config = SmallConfig();
  config.obs = ObsSink{&metrics, &tracer};
  AdvisorService service(config);
  const TenantId id = RegisterSimple(&service, "t");
  ASSERT_TRUE(service.SubmitQuery(id, MakeQuery(2, 2, 0, 0)).get().ok());
  service.Shutdown();

  // Find the query request's id in the flight recorder...
  uint64_t rid = 0;
  for (const RequestRecord& r : service.flight_recorder().Snapshot()) {
    if (r.verb == RequestVerb::kQuery) rid = r.id;
  }
  ASSERT_NE(rid, 0u);
  const std::string rid_str = std::to_string(rid);

  // ...and check the request -> service -> storage span chain carries it,
  // with each level contained in its parent (same-thread containment is
  // what Chrome tracing nests by).
  const auto events = tracer.events();
  const TraceEvent* request = nullptr;
  const TraceEvent* verb = nullptr;
  const TraceEvent* storage = nullptr;
  for (const TraceEvent& e : events) {
    bool matches = false;
    for (const auto& [key, value] : e.args) {
      if (key == "rid" && value == rid_str) matches = true;
    }
    if (!matches) continue;
    if (e.name == "request/query") request = &e;
    if (e.name == "service/query") verb = &e;
    if (e.name == "storage/measure") storage = &e;
  }
  ASSERT_NE(request, nullptr);
  ASSERT_NE(verb, nullptr);
  ASSERT_NE(storage, nullptr);
  EXPECT_EQ(request->thread_id, verb->thread_id);
  EXPECT_EQ(verb->thread_id, storage->thread_id);
  EXPECT_GE(verb->start_ns, request->start_ns);
  EXPECT_LE(verb->start_ns + verb->duration_ns,
            request->start_ns + request->duration_ns);
  EXPECT_GE(storage->start_ns, verb->start_ns);
  EXPECT_LE(storage->start_ns + storage->duration_ns,
            verb->start_ns + verb->duration_ns);
}

TEST(ServiceTelemetryTest, QueryRequestsRecordPagesAndPruning) {
  AdvisorService service(SmallConfig());
  TenantSpec spec;
  spec.name = "t";
  spec.schema = SmallSchema();
  spec.facts = DenseFacts(spec.schema, 8);
  spec.backend = StorageBackendKind::kMicroPartition;
  const TenantId id = service.RegisterTenant(std::move(spec)).value();
  ASSERT_TRUE(service.Query(id, MakeQuery(2, 2, 0, 0)).ok());

  bool found = false;
  for (const RequestRecord& r : service.flight_recorder().Snapshot()) {
    if (r.verb != RequestVerb::kQuery) continue;
    found = true;
    EXPECT_GT(r.pages, 0u);
  }
  EXPECT_TRUE(found);
}

TEST(ServiceTelemetryTest, SloWindowsTrackVerbLatenciesAndErrors) {
  AdvisorService service(SmallConfig());
  const TenantId id = RegisterSimple(&service, "t");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(service.Query(id, MakeQuery(2, 2, 0, 0)).ok());
  }
  EXPECT_FALSE(service.EndEpoch(id).ok());  // nothing ingested: error

  const TelemetrySnapshot snap = service.Telemetry();
  ASSERT_EQ(snap.tenants.size(), 1u);
  const auto& slo = snap.tenants[0].slo;
  const auto& query = slo.verbs[static_cast<size_t>(RequestVerb::kQuery)];
  EXPECT_EQ(query.count, 10u);
  EXPECT_EQ(query.errors, 0u);
  EXPECT_GT(query.p50_ns, 0.0);
  EXPECT_GE(query.p99_ns, query.p50_ns);
  const auto& end_epoch =
      slo.verbs[static_cast<size_t>(RequestVerb::kEndEpoch)];
  EXPECT_EQ(end_epoch.count, 1u);
  EXPECT_EQ(end_epoch.errors, 1u);
  EXPECT_DOUBLE_EQ(end_epoch.error_rate, 1.0);
  EXPECT_GT(snap.tenants[0].published_sequence, 0u);
}

TEST(ServiceTelemetryTest, SamplerThreadRotatesWindows) {
  ServiceConfig config = SmallConfig();
  config.telemetry.sampler_interval_ms = 2;
  config.telemetry.slo_buckets = 2;
  AdvisorService service(config);
  const TenantId id = RegisterSimple(&service, "t");

  // Wait (bounded) for the sampler to have rotated at least slo_buckets
  // times, then confirm requests older than the window have been retired.
  ASSERT_TRUE(service.Query(id, MakeQuery(2, 2, 0, 0)).ok());
  const uint64_t target = service.Telemetry().tenants[0].slo.advances + 3;
  for (int i = 0; i < 2000; ++i) {
    if (service.Telemetry().tenants[0].slo.advances >= target) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const TelemetrySnapshot snap = service.Telemetry();
  EXPECT_GE(snap.tenants[0].slo.advances, target);
  EXPECT_EQ(
      snap.tenants[0].slo.verbs[static_cast<size_t>(RequestVerb::kQuery)]
          .count,
      0u);
}

TEST(ServiceTelemetryTest, AuditLogRecordsEveryDecisionWithInputs) {
  ServiceConfig config = SmallConfig();
  config.recluster.movement_budget_pages = 123456;
  AdvisorService service(config);
  const TenantId id = RegisterSimple(&service, "t");

  // Registration audits the initial adopt; an explicit recluster audits a
  // keep (nothing changed).
  ASSERT_TRUE(service.ReclusterNow(id).ok());

  const auto audit = service.audit_log().Snapshot();
  ASSERT_EQ(audit.size(), 2u);
  EXPECT_EQ(audit[0].decision, ReclusterDecision::kInitialAdopt);
  EXPECT_EQ(audit[0].tenant, id);
  EXPECT_LT(audit[0].sequence, audit[1].sequence);
  EXPECT_NE(audit[1].decision, ReclusterDecision::kAdopt);
  EXPECT_EQ(audit[1].budget_pages, 123456u);
  EXPECT_GT(audit[1].request_id, 0u)
      << "decision must be attributed to the recluster request";
  EXPECT_FALSE(audit[1].current_strategy.empty());
  const std::string json = audit[1].ToJson();
  EXPECT_NE(json.find("\"decision\""), std::string::npos);
  EXPECT_NE(json.find("\"drift\""), std::string::npos);
  EXPECT_NE(json.find("\"budget_pages\": 123456"), std::string::npos);
}

TEST(ServiceTelemetryTest, AuditLogIsBounded) {
  ReclusterAuditLog log(3);
  for (int i = 0; i < 10; ++i) log.Record(ReclusterAuditEntry{});
  EXPECT_EQ(log.recorded(), 10u);
  const auto entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].sequence, 7u);
  EXPECT_EQ(entries[2].sequence, 9u);
}

TEST(ServiceTelemetryTest, ErrorDumpWritesRecorderOnFirstError) {
  const std::string path =
      testing::TempDir() + "/snakes_error_dump_test.json";
  std::remove(path.c_str());
  ServiceConfig config = SmallConfig();
  config.telemetry.error_dump_path = path;
  AdvisorService service(config);
  const TenantId id = RegisterSimple(&service, "t");
  ASSERT_TRUE(service.Advise(id).ok());
  EXPECT_FALSE(service.EndEpoch(id).ok());  // first error: triggers dump

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "error dump not written to " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string dump = buffer.str();
  EXPECT_NE(dump.find("\"requests\""), std::string::npos);
  EXPECT_NE(dump.find("\"end-epoch\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ServiceTelemetryTest, TelemetryDispatchVerb) {
  AdvisorService service(SmallConfig());
  const TenantId id = RegisterSimple(&service, "t");
  ASSERT_TRUE(service.Query(id, MakeQuery(2, 2, 0, 0)).ok());

  const std::string json = service.Dispatch("t", "telemetry").value();
  EXPECT_NE(json.find("\"recorder\""), std::string::npos);
  EXPECT_NE(json.find("\"tenants\""), std::string::npos);
  EXPECT_NE(json.find("\"audit\""), std::string::npos);

  const std::string prom = service.Dispatch("t", "telemetry prom").value();
  EXPECT_NE(prom.find("# TYPE snakes_slo_request_latency_ns summary"),
            std::string::npos);
  EXPECT_NE(prom.find("quantile=\"0.99\""), std::string::npos);

  const std::string recorder =
      service.Dispatch("t", "telemetry recorder").value();
  EXPECT_NE(recorder.find("\"requests\""), std::string::npos);

  EXPECT_EQ(service.Dispatch("t", "telemetry advance").value(),
            "advanced slo windows");
  EXPECT_FALSE(service.Dispatch("t", "telemetry bogus").ok());
  EXPECT_FALSE(service.Dispatch("nope", "telemetry").ok());
}

TEST(ServiceTelemetryTest, PrometheusExpositionGrammar) {
  AdvisorService service(SmallConfig());
  const TenantId id = RegisterSimple(&service, "quo\"ted");
  ASSERT_TRUE(service.Query(id, MakeQuery(2, 2, 0, 0)).ok());
  const std::string prom = service.Telemetry().ToPrometheus();

  std::istringstream lines(prom);
  std::string line;
  std::set<std::string> typed_families;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# TYPE ", 0) == 0) {
      const size_t name_end = line.find(' ', 7);
      ASSERT_NE(name_end, std::string::npos) << line;
      typed_families.insert(line.substr(7, name_end - 7));
      continue;
    }
    // Sample line: name{labels} value | name value; family must have been
    // TYPE-declared (summaries add _sum/_count to the family name).
    EXPECT_EQ(line.rfind("snakes_", 0), 0u) << line;
    const size_t brace = line.find('{');
    const size_t space = line.find(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, std::min(brace, space));
    for (const char* suffix : {"_sum", "_count"}) {
      const size_t pos = name.size() > strlen(suffix)
                             ? name.rfind(suffix)
                             : std::string::npos;
      if (pos != std::string::npos && pos == name.size() - strlen(suffix) &&
          typed_families.count(name) == 0) {
        name = name.substr(0, pos);
      }
    }
    EXPECT_EQ(typed_families.count(name), 1u) << line;
    if (brace != std::string::npos && brace < space) {
      EXPECT_NE(line.find('}'), std::string::npos) << line;
    }
  }
  // The escaped tenant name must appear escaped, not raw.
  EXPECT_NE(prom.find("tenant=\"quo\\\"ted\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrent dump consistency + bit-identical advice (acceptance criteria)
// ---------------------------------------------------------------------------

/// Runs one seeded interleaving of {ingest, end-epoch, query, telemetry
/// dump} with background reclusters enabled, validating every concurrent
/// dump.
void RunTelemetryStorm(uint64_t seed, MetricsRegistry* metrics,
                       Tracer* tracer) {
  ServiceConfig config = SmallConfig();
  config.recluster_on_epoch_close = true;  // dumps race epoch adoptions
  config.obs = ObsSink{metrics, tracer};
  AdvisorService service(config);
  TenantSpec spec;
  spec.name = "t";
  spec.schema = SmallSchema();
  spec.facts = DenseFacts(spec.schema, 2);
  spec.initial_workload =
      Workload::Point(QueryClassLattice(*spec.schema), QueryClass{0, 2})
          .value();
  const TenantId id = service.RegisterTenant(std::move(spec)).value();

  const auto validate_dump = [&]() {
    const TelemetrySnapshot snap = service.Telemetry();
    uint64_t prev = 0;
    for (const RequestRecord& r : snap.requests) {
      ASSERT_GT(r.id, prev);
      prev = r.id;
      ASSERT_LT(static_cast<int>(r.verb), kNumRequestVerbs);
      ASSERT_LE(r.enqueue_ns, r.start_ns);
      ASSERT_LE(r.start_ns, r.finish_ns);
    }
  };

  std::vector<InterleaveDriver::Op> ops;
  for (uint64_t b = 0; b < 4; ++b) {
    ops.push_back([&service, id, b]() {
      // Shift toward the mirrored workload so adoptions actually fire.
      (void)service.Ingest(id, MakeQuery(2, 0, 0, b % 4));
    });
  }
  for (int i = 0; i < 2; ++i) {
    ops.push_back([&service, id]() { (void)service.EndEpoch(id); });
    ops.push_back([&service, id]() {
      (void)service.Query(id, MakeQuery(2, 2, 0, 0));
    });
    ops.push_back(validate_dump);
  }

  InterleaveDriver driver(seed);
  driver.RunConcurrent(4, ops);
  service.Shutdown();  // drain background reclusters
  validate_dump();
  EXPECT_TRUE(service.Advise(id).ok());
}

TEST(ServiceTelemetryTest, ConcurrentDumpsDuringAdoptionAreConsistent) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    MetricsRegistry metrics;
    Tracer tracer;
    RunTelemetryStorm(seed, &metrics, &tracer);
  }
}

/// Runs a fixed request sequence in a seeded serial order — deterministic,
/// unlike a true concurrent schedule — and returns the final advice.
Recommendation RunDeterministicSequence(uint64_t seed, bool attach_obs,
                                        MetricsRegistry* metrics,
                                        Tracer* tracer) {
  ServiceConfig config = SmallConfig();
  if (attach_obs) config.obs = ObsSink{metrics, tracer};
  AdvisorService service(config);
  TenantSpec spec;
  spec.name = "t";
  spec.schema = SmallSchema();
  spec.facts = DenseFacts(spec.schema, 2);
  spec.initial_workload =
      Workload::Point(QueryClassLattice(*spec.schema), QueryClass{0, 2})
          .value();
  const TenantId id = service.RegisterTenant(std::move(spec)).value();

  std::vector<InterleaveDriver::Op> ops;
  for (uint64_t b = 0; b < 4; ++b) {
    ops.push_back([&service, id, b]() {
      (void)service.Ingest(id, MakeQuery(2, 0, 0, b % 4));
    });
    ops.push_back([&service, id, b]() {
      (void)service.Query(id, MakeQuery(0, 2, b % 4, 0));
    });
    ops.push_back([&service, id]() { (void)service.Telemetry(); });
  }
  InterleaveDriver driver(seed);
  driver.RunSerial(ops);
  (void)service.EndEpoch(id);
  (void)service.ReclusterNow(id);
  return service.Advise(id).value();
}

TEST(ServiceTelemetryTest, AdviceIsBitIdenticalWithTelemetryOnAndOff) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    MetricsRegistry metrics;
    Tracer tracer;
    const Recommendation with_telemetry = RunDeterministicSequence(
        seed, /*attach_obs=*/true, &metrics, &tracer);
    const Recommendation without_telemetry =
        RunDeterministicSequence(seed, /*attach_obs=*/false, nullptr, nullptr);
    EXPECT_TRUE(
        BitIdenticalRecommendations(with_telemetry, without_telemetry))
        << "seed " << seed
        << ": attaching telemetry sinks changed the advice";
  }
}

}  // namespace
}  // namespace snakes
