#include <gtest/gtest.h>

#include <fstream>

#include "core/spec.h"

namespace snakes {
namespace {

constexpr const char* kTpcdSpec = R"(
# TPC-D LineItem
dimension parts    40 5     # part -> mfgr -> all
dimension supplier 10
dimension time     12 7
)";

TEST(SchemaSpecTest, ParsesTpcdShape) {
  const auto schema = ParseSchemaSpec(kTpcdSpec);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->num_dims(), 3);
  EXPECT_EQ(schema->dim(0).name(), "parts");
  EXPECT_EQ(schema->dim(0).num_leaves(), 200u);
  EXPECT_EQ(schema->dim(1).num_levels(), 1);
  EXPECT_EQ(schema->dim(2).num_leaves(), 84u);
  EXPECT_EQ(schema->lattice_size(), 18u);
}

TEST(SchemaSpecTest, TrivialDimensionAllowed) {
  const auto schema = ParseSchemaSpec("dimension unit\n");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->dim(0).num_levels(), 0);
}

TEST(SchemaSpecTest, Errors) {
  EXPECT_FALSE(ParseSchemaSpec("").ok());
  EXPECT_FALSE(ParseSchemaSpec("# only comments\n").ok());
  EXPECT_FALSE(ParseSchemaSpec("dimensino parts 4\n").ok());
  EXPECT_FALSE(ParseSchemaSpec("dimension\n").ok());
  EXPECT_FALSE(ParseSchemaSpec("dimension parts four\n").ok());
  EXPECT_FALSE(ParseSchemaSpec("dimension parts 0\n").ok());
}

TEST(WorkloadSpecTest, ParsesAndNormalizes) {
  const auto schema = ParseSchemaSpec(kTpcdSpec).value();
  const QueryClassLattice lattice(schema);
  const auto mu = ParseWorkloadSpec(lattice, R"(
    class 2,0,1  3     # all parts, one supplier, one year
    class 0,0,0  1
  )");
  ASSERT_TRUE(mu.ok()) << mu.status().ToString();
  EXPECT_NEAR(mu->probability(QueryClass{2, 0, 1}), 0.75, 1e-12);
  EXPECT_NEAR(mu->probability(QueryClass{0, 0, 0}), 0.25, 1e-12);
}

TEST(WorkloadSpecTest, Errors) {
  const auto schema = ParseSchemaSpec(kTpcdSpec).value();
  const QueryClassLattice lattice(schema);
  EXPECT_FALSE(ParseWorkloadSpec(lattice, "").ok());
  EXPECT_FALSE(ParseWorkloadSpec(lattice, "klass 0,0,0 1\n").ok());
  EXPECT_FALSE(ParseWorkloadSpec(lattice, "class 0,0 1\n").ok());
  EXPECT_FALSE(ParseWorkloadSpec(lattice, "class 0,0,0,0 1\n").ok());
  EXPECT_FALSE(ParseWorkloadSpec(lattice, "class 9,0,0 1\n").ok());
  EXPECT_FALSE(ParseWorkloadSpec(lattice, "class 0,0,0 -1\n").ok());
  EXPECT_FALSE(ParseWorkloadSpec(lattice, "class 0,0,0\n").ok());
  EXPECT_FALSE(ParseWorkloadSpec(lattice, "class 0,0,0 x\n").ok());
}

TEST(SpecFileTest, ReadFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/schema.spec";
  {
    std::ofstream out(path);
    out << kTpcdSpec;
  }
  const auto text = ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  EXPECT_TRUE(ParseSchemaSpec(text.value()).ok());
  EXPECT_FALSE(ReadFileToString(path + ".missing").ok());
}

}  // namespace
}  // namespace snakes
