#ifndef SNAKES_TESTS_INTERLEAVE_DRIVER_H_
#define SNAKES_TESTS_INTERLEAVE_DRIVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace snakes {

/// Deterministic concurrency harness for service-level tests: takes N
/// operation closures and executes them under seeded schedules, so "the
/// result is independent of request ordering" becomes a property checked
/// over many reproducible interleavings instead of one lucky run.
///
/// Two execution modes cover the two halves of that property:
///
///  * RunSerial — executes the ops one at a time in a seeded Fisher-Yates
///    permutation. Fully deterministic: seed s always yields the same
///    schedule, so a failing seed is a repro. Sweeping seeds enumerates
///    distinct total orders of {advise, ingest, recluster, ...}.
///  * RunConcurrent — hands the permuted ops to real threads behind a
///    start gate (every thread spins up before any op runs). Scheduling is
///    up to the OS; this is the leg TSan watches for data races while the
///    test asserts the final state still matches the serial runs.
///
/// One driver instance = one schedule stream: Permutation/RunSerial/
/// RunConcurrent draw from the seeded Rng in call order.
class InterleaveDriver {
 public:
  using Op = std::function<void()>;

  explicit InterleaveDriver(uint64_t seed) : rng_(seed) {}

  /// Seeded Fisher-Yates permutation of [0, n).
  std::vector<size_t> Permutation(size_t n) {
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    for (size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng_.Below(i)]);
    }
    return order;
  }

  /// Executes every op exactly once, serially, in a seeded order.
  void RunSerial(const std::vector<Op>& ops) {
    for (size_t index : Permutation(ops.size())) ops[index]();
  }

  /// Executes every op exactly once across `num_threads` real threads.
  /// Ops are dealt to threads in a seeded permutation (thread t runs its
  /// share in that order); a start gate releases all threads at once to
  /// maximize overlap. Blocks until every op has returned.
  void RunConcurrent(int num_threads, const std::vector<Op>& ops) {
    if (num_threads < 1) num_threads = 1;
    const std::vector<size_t> order = Permutation(ops.size());
    std::mutex gate_mu;
    std::condition_variable gate_cv;
    bool open = false;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) {
      threads.emplace_back([&, t]() {
        {
          std::unique_lock<std::mutex> lock(gate_mu);
          gate_cv.wait(lock, [&]() { return open; });
        }
        // Strided deal: thread t executes order[t], order[t + T], ...
        for (size_t i = static_cast<size_t>(t); i < order.size();
             i += static_cast<size_t>(num_threads)) {
          ops[order[i]]();
        }
      });
    }
    {
      std::lock_guard<std::mutex> lock(gate_mu);
      open = true;
    }
    gate_cv.notify_all();
    for (std::thread& thread : threads) thread.join();
  }

 private:
  Rng rng_;
};

}  // namespace snakes

#endif  // SNAKES_TESTS_INTERLEAVE_DRIVER_H_
