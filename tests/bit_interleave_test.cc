// Differential kernel-parity suite for the bit-interleave layer
// (src/curves/bit_interleave.h): the BMI2 pdep/pext kernels and the portable
// bit-serial fallbacks must produce identical bits on every input — that is
// the contract letting advisor recommendations, simulator measurements and
// curve ranks be independent of the host CPU. Covered here:
//
//  * exhaustive (mask, src) parity on every small width, randomized 64-bit
//    patterns, and the pdep/pext round-trip identities;
//  * interleave/transpose mask algebra against bit-serial references,
//    including non-power-of-two per-dimension bit widths and the
//    partial-level Hilbert rotation edge (a hierarchy level cutting through
//    the middle of the dimension's bits);
//  * whole-curve bit-identity (CellAt / RankOf / AppendRuns / advisor
//    recommendations) under forced-portable vs dispatched kernels.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "core/advisor.h"
#include "curves/bit_interleave.h"
#include "curves/hilbert.h"
#include "curves/z_curve.h"
#include "hierarchy/star_schema.h"
#include "lattice/grid_query.h"
#include "lattice/workload.h"
#include "util/rng.h"

namespace snakes {
namespace curve_internal {
namespace {

// Restores the process-wide kernel choice on scope exit so a failing test
// cannot leak a forced-portable state into its neighbours.
struct KernelGuard {
  ~KernelGuard() { ForcePortableKernels(false); }
};

// True when the dispatched kernels can actually differ from the portable
// ones in this process: BMI2 present and not pinned out at build time.
bool DispatchCanUseBmi2() {
  if (KernelsForcedPortableAtBuild()) return false;
  const char* env = std::getenv("SNAKES_FORCE_PORTABLE_KERNELS");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') return false;
  return Bmi2Supported();
}

// ---------------------------------------------------------------------------
// Raw pdep/pext parity.

#if defined(__x86_64__)
TEST(BitInterleaveTest, PdepPextExhaustiveSmallWidths) {
  if (!Bmi2Supported()) GTEST_SKIP() << "no BMI2 on this host";
  // Every mask over w bits crossed with every source over w bits: the source
  // space covers all deposit patterns because pdep only reads popcount(mask)
  // low bits.
  for (int w = 1; w <= 8; ++w) {
    const uint64_t space = uint64_t{1} << w;
    for (uint64_t mask = 0; mask < space; ++mask) {
      for (uint64_t src = 0; src < space; ++src) {
        ASSERT_EQ(PortablePdep(src, mask), Bmi2Pdep(src, mask))
            << "pdep w=" << w << " src=" << src << " mask=" << mask;
        ASSERT_EQ(PortablePext(src, mask), Bmi2Pext(src, mask))
            << "pext w=" << w << " src=" << src << " mask=" << mask;
      }
    }
  }
}

TEST(BitInterleaveTest, PdepPextRandomFullWidth) {
  if (!Bmi2Supported()) GTEST_SKIP() << "no BMI2 on this host";
  Rng rng(20260809);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t src = rng.Next64();
    // Vary mask density: dense, sparse and byte-striped masks all occur.
    uint64_t mask = rng.Next64();
    if (i % 3 == 1) mask &= rng.Next64();
    if (i % 3 == 2) mask &= 0x0f0f0f0f0f0f0f0fULL;
    ASSERT_EQ(PortablePdep(src, mask), Bmi2Pdep(src, mask))
        << "src=" << src << " mask=" << mask;
    ASSERT_EQ(PortablePext(src, mask), Bmi2Pext(src, mask))
        << "src=" << src << " mask=" << mask;
  }
}
#endif  // __x86_64__

TEST(BitInterleaveTest, PdepPextRoundTripIdentities) {
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.Next64();
    const uint64_t mask = rng.Next64() & rng.Next64();
    // pdep(pext(v, m), m) keeps exactly the masked bits.
    EXPECT_EQ(PortablePdep(PortablePext(v, mask), mask), v & mask);
    // pext(pdep(s, m), m) recovers the low popcount(m) bits of s.
    const int bits = __builtin_popcountll(mask);
    const uint64_t low =
        bits >= 64 ? v : v & ((uint64_t{1} << bits) - 1);
    EXPECT_EQ(PortablePext(PortablePdep(v, mask), mask), low);
  }
}

TEST(BitInterleaveTest, GrayCodeToRankMatchesSerialLoop) {
  const auto serial = [](uint64_t gray) {
    uint64_t rank = gray;
    while (gray >>= 1) rank ^= gray;
    return rank;
  };
  for (uint64_t g = 0; g < (uint64_t{1} << 16); ++g) {
    ASSERT_EQ(GrayCodeToRank(g), serial(g)) << "gray=" << g;
  }
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t g = rng.Next64();
    ASSERT_EQ(GrayCodeToRank(g), serial(g)) << "gray=" << g;
  }
}

// ---------------------------------------------------------------------------
// Mask algebra against bit-serial references.

uint64_t RefInterleave(const std::vector<int>& owner,
                       const std::vector<uint64_t>& coord) {
  std::vector<int> next(coord.size(), 0);
  uint64_t value = 0;
  for (size_t p = 0; p < owner.size(); ++p) {
    const size_t d = static_cast<size_t>(owner[p]);
    if ((coord[d] >> next[d]) & 1) value |= uint64_t{1} << p;
    ++next[d];
  }
  return value;
}

TEST(BitInterleaveTest, InterleaveMasksMatchReferenceOnUnevenWidths) {
  KernelGuard guard;
  // Dimension bit widths 3, 5 and 1 — none a power of two, deliberately
  // unequal — with an irregular ownership pattern rather than round-robin.
  const std::vector<int> owner = {0, 1, 0, 1, 1, 2, 0, 1, 1};
  std::vector<int> width(3, 0);
  for (int d : owner) ++width[static_cast<size_t>(d)];
  const InterleaveMasks masks = MakeInterleaveMasks(owner, 3);
  EXPECT_EQ(masks.total_bits, static_cast<int>(owner.size()));
  Rng rng(13);
  for (bool forced : {false, true}) {
    ForcePortableKernels(forced);
    for (int i = 0; i < 2000; ++i) {
      std::vector<uint64_t> coord(3);
      CellCoord cell;
      cell.resize(3);
      for (size_t d = 0; d < 3; ++d) {
        coord[d] = rng.Below(uint64_t{1} << width[d]);
        cell[d] = coord[d];
      }
      const uint64_t expected = RefInterleave(owner, coord);
      ASSERT_EQ(InterleaveBits(masks, cell), expected);
      const CellCoord back = DeinterleaveBits(masks, expected);
      for (size_t d = 0; d < 3; ++d) ASSERT_EQ(back[d], coord[d]);
    }
  }
}

TEST(BitInterleaveTest, TransposeMasksMatchReferenceDistribution) {
  KernelGuard guard;
  Rng rng(17);
  for (int dims = 1; dims <= 5; ++dims) {
    for (int bits = 1; bits * dims <= 30; ++bits) {
      const TransposeMasks masks = MakeTransposeMasks(bits, dims);
      const int total = bits * dims;
      for (bool forced : {false, true}) {
        ForcePortableKernels(forced);
        for (int i = 0; i < 200; ++i) {
          const uint64_t rank = rng.Below(uint64_t{1} << total);
          // Reference: rank bit q feeds transpose word dims-1 - q%dims,
          // local bit q/dims (the scalar distribution loop the masks fold).
          uint32_t expected[8] = {0};
          for (int q = 0; q < total; ++q) {
            if ((rank >> q) & 1) {
              expected[dims - 1 - q % dims] |=
                  uint32_t{1} << (q / dims);
            }
          }
          uint32_t x[8] = {0};
          RankToTranspose(masks, rank, x);
          for (int d = 0; d < dims; ++d) {
            ASSERT_EQ(x[d], expected[d])
                << "dims=" << dims << " bits=" << bits << " rank=" << rank;
          }
          ASSERT_EQ(TransposeToRank(masks, x), rank);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Kernel dispatch plumbing.

TEST(BitInterleaveTest, ForcePortableTogglesActiveKernel) {
  KernelGuard guard;
  ForcePortableKernels(true);
  EXPECT_EQ(ActiveKernel(), KernelKind::kPortable);
  ForcePortableKernels(false);
  EXPECT_EQ(ActiveKernel(), DispatchCanUseBmi2() ? KernelKind::kBmi2
                                                 : KernelKind::kPortable);
}

TEST(BitInterleaveTest, BuildPinImpliesPortable) {
  if (!KernelsForcedPortableAtBuild()) {
    GTEST_SKIP() << "build not configured with SNAKES_FORCE_PORTABLE_KERNELS";
  }
  KernelGuard guard;
  ForcePortableKernels(false);
  EXPECT_EQ(ActiveKernel(), KernelKind::kPortable);
}

// ---------------------------------------------------------------------------
// Whole-curve bit-identity across kernels. These run the same curve twice —
// forced portable, then dispatched — and demand identical ranks, cells, runs
// and recommendations. On hosts without BMI2 both passes use the portable
// kernels and the comparison is trivially (still correctly) green.

struct CurveObservations {
  std::vector<uint64_t> ranks;
  std::vector<CellCoord> cells;
  std::vector<RankRun> runs;
};

CurveObservations Observe(const Linearization& lin) {
  CurveObservations obs;
  const StarSchema& schema = lin.schema();
  for (uint64_t r = 0; r < lin.num_cells(); ++r) {
    const CellCoord cell = lin.CellAt(r);
    obs.cells.push_back(cell);
    obs.ranks.push_back(lin.RankOf(cell));
  }
  const QueryClassLattice lat(schema);
  for (uint64_t i = 0; i < lat.size(); ++i) {
    const QueryClass cls = lat.ClassAt(i);
    const uint64_t num_queries = NumQueriesInClass(schema, cls);
    for (uint64_t q = 0; q < num_queries; ++q) {
      lin.AppendRuns(BoxOf(schema, QueryAt(schema, cls, q)), &obs.runs);
    }
  }
  return obs;
}

void ExpectSameObservations(const CurveObservations& a,
                            const CurveObservations& b) {
  ASSERT_EQ(a.ranks, b.ranks);
  ASSERT_EQ(a.runs, b.runs);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (size_t i = 0; i < a.cells.size(); ++i) {
    ASSERT_EQ(a.cells[i].size(), b.cells[i].size());
    for (size_t d = 0; d < a.cells[i].size(); ++d) {
      ASSERT_EQ(a.cells[i][d], b.cells[i][d]);
    }
  }
}

std::shared_ptr<const StarSchema> UnevenPow2Schema() {
  // Extents 8 and 32: bit widths 3 and 5 (neither a power of two), split
  // over two hierarchy levels each.
  std::vector<Hierarchy> dims;
  dims.push_back(Hierarchy::Uniform("x", {4, 2}).value());
  dims.push_back(Hierarchy::Uniform("y", {8, 4}).value());
  return std::make_shared<StarSchema>(
      StarSchema::Make("uneven", std::move(dims)).value());
}

std::shared_ptr<const StarSchema> PartialLevelHilbertSchema() {
  // Fanouts {2, 4} per dimension: extent 8, and the level boundary after one
  // bit cuts through the middle of the 3-bit Hilbert coordinate — the
  // partial-level rotation edge where class boxes are not axis-aligned to
  // whole Hilbert levels.
  std::vector<Hierarchy> dims;
  dims.push_back(Hierarchy::Uniform("x", {2, 4}).value());
  dims.push_back(Hierarchy::Uniform("y", {2, 4}).value());
  return std::make_shared<StarSchema>(
      StarSchema::Make("partial-hilbert", std::move(dims)).value());
}

TEST(BitInterleaveTest, CurvesBitIdenticalAcrossKernels) {
  KernelGuard guard;
  auto uneven = UnevenPow2Schema();
  auto partial = PartialLevelHilbertSchema();
  std::vector<std::shared_ptr<const Linearization>> curves;
  curves.push_back(ZCurve::Make(uneven).value());
  curves.push_back(GrayCurve::Make(uneven).value());
  curves.push_back(HilbertCurve::Make(partial, false).value());
  curves.push_back(HilbertCurve::Make(partial, true).value());
  for (const auto& lin : curves) {
    ForcePortableKernels(true);
    const CurveObservations portable = Observe(*lin);
    ForcePortableKernels(false);
    const CurveObservations dispatched = Observe(*lin);
    SCOPED_TRACE(lin->name());
    ExpectSameObservations(portable, dispatched);
  }
}

TEST(BitInterleaveTest, AdvisorBitIdenticalAcrossKernels) {
  KernelGuard guard;
  auto schema = UnevenPow2Schema();
  const ClusteringAdvisor advisor(schema);
  Rng rng(23);
  const Workload mu = Workload::Random(advisor.Lattice(), &rng);
  EvaluationRequest request{mu};
  request.num_threads = 1;
  ForcePortableKernels(true);
  const Recommendation portable = advisor.Advise(request).value();
  ForcePortableKernels(false);
  const Recommendation dispatched = advisor.Advise(request).value();
  EXPECT_TRUE(BitIdenticalRecommendations(portable, dispatched));
}

}  // namespace
}  // namespace curve_internal
}  // namespace snakes
