#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/advisor.h"
#include "cost/workload_cost.h"
#include "curves/path_order.h"
#include "curves/row_major.h"
#include "path/dpkd.h"
#include "storage/executor.h"
#include "storage/pager.h"
#include "tpcd/dbgen.h"
#include "tpcd/workloads.h"

namespace snakes {
namespace {

// A small TPC-D configuration keeps end-to-end tests fast while exercising
// the full pipeline: dbgen -> lattice -> DP -> snaked order -> pager ->
// executor.
tpcd::Config SmallConfig() {
  tpcd::Config config;
  config.parts_per_mfgr = 4;
  config.num_mfgrs = 3;
  config.num_suppliers = 4;
  config.months_per_year = 6;
  config.num_years = 2;
  config.num_orders = 4'000;
  return config;
}

TEST(IntegrationTest, EndToEndPipelineOnSmallWarehouse) {
  const auto warehouse = tpcd::GenerateWarehouse(SmallConfig(), 11).value();
  const QueryClassLattice lat(*warehouse.schema);
  const Workload mu = tpcd::SectionSixWorkload(lat, 7).value();

  const auto dp = FindOptimalLatticePath(mu).value();
  EXPECT_GT(dp.cost, 0.0);

  auto snaked = MakePathOrder(warehouse.schema, dp.path, true).value();
  ASSERT_TRUE(snaked->Validate().ok());

  auto layout = PackedLayout::Pack(std::move(snaked), warehouse.facts).value();
  EXPECT_GT(layout.num_pages(), 0u);
  const IoSimulator sim(layout);
  const auto io = IoSimulator::Expect(mu, sim.MeasureAllClasses());
  EXPECT_GE(io.expected_seeks, 1.0);
  EXPECT_GE(io.expected_normalized_blocks, 1.0);
}

TEST(IntegrationTest, SnakedOptimalBeatsWorstRowMajorOnSeeks) {
  const auto warehouse = tpcd::GenerateWarehouse(SmallConfig(), 13).value();
  const QueryClassLattice lat(*warehouse.schema);
  for (int id : {1, 7, 14, 27}) {
    const Workload mu = tpcd::SectionSixWorkload(lat, id).value();
    const auto dp = FindOptimalLatticePath(mu).value();
    auto snaked = MakePathOrder(warehouse.schema, dp.path, true).value();
    auto layout =
        PackedLayout::Pack(std::move(snaked), warehouse.facts).value();
    const auto opt_io =
        IoSimulator::Expect(mu, IoSimulator(layout).MeasureAllClasses());

    double worst_seeks = 0.0;
    for (auto& rm : AllRowMajorOrders(warehouse.schema)) {
      auto rm_layout =
          PackedLayout::Pack(std::move(rm), warehouse.facts).value();
      const auto rm_io =
          IoSimulator::Expect(mu, IoSimulator(rm_layout).MeasureAllClasses());
      worst_seeks = std::max(worst_seeks, rm_io.expected_seeks);
    }
    EXPECT_LT(opt_io.expected_seeks, worst_seeks) << "workload " << id;
  }
}

TEST(AdvisorTest, RecommendsAndRanks) {
  const auto warehouse = tpcd::GenerateWarehouse(SmallConfig(), 17).value();
  const ClusteringAdvisor advisor(warehouse.schema);
  const QueryClassLattice lat = advisor.Lattice();
  const Workload mu = tpcd::SectionSixWorkload(lat, 7).value();

  const Recommendation rec = advisor.Advise(EvaluationRequest{mu}).value();
  EXPECT_FALSE(rec.ranked.empty());
  // Ranked ascending by expected cost.
  for (size_t i = 1; i < rec.ranked.size(); ++i) {
    EXPECT_LE(rec.ranked[i - 1].expected_cost, rec.ranked[i].expected_cost);
  }
  // The optimal snaked path is the cheapest strategy here (Theorem 2 holds
  // exactly on binary grids; empirically it also wins on this schema).
  EXPECT_EQ(rec.best().name.rfind("snaked-path", 0), 0u) << rec.best().name;
  EXPECT_NEAR(rec.optimal_snaked_cost, rec.best().expected_cost,
              1e-6 * rec.best().expected_cost);
  // Corollary-1 ordering: optimal snaked <= snake of unsnaked optimum
  // <= unsnaked optimum.
  EXPECT_LE(rec.optimal_snaked_cost, rec.snaked_optimal_cost + 1e-9);
  EXPECT_LE(rec.snaked_optimal_cost, rec.optimal_path_cost + 1e-9);
  // The unsnaked DP cost matches the analytic path cost.
  EXPECT_NEAR(rec.optimal_path_cost, ExpectedPathCost(mu, rec.optimal_path),
              1e-9);
  // Report renders.
  const std::string report = rec.ToString();
  EXPECT_NE(report.find("optimal lattice path"), std::string::npos);
  EXPECT_NE(report.find("snaked-path"), std::string::npos);
}

TEST(AdvisorTest, AdviseWithStorageMeasurements) {
  const auto warehouse = tpcd::GenerateWarehouse(SmallConfig(), 19).value();
  const ClusteringAdvisor advisor(warehouse.schema);
  const Workload mu =
      tpcd::SectionSixWorkload(advisor.Lattice(), 1).value();
  EvaluationRequest request{mu};
  request.measure_storage = true;
  request.facts = warehouse.facts;
  const Recommendation rec = advisor.Advise(request).value();
  for (const StrategyReport& report : rec.ranked) {
    ASSERT_TRUE(report.io.has_value()) << report.name;
    EXPECT_GE(report.io->expected_seeks, 0.9) << report.name;
  }
  // Requesting storage without facts fails cleanly.
  request.facts = nullptr;
  EXPECT_FALSE(advisor.Advise(request).ok());
}

TEST(AdvisorTest, RecommendedOrderIsValidSnakedPath) {
  const auto warehouse = tpcd::GenerateWarehouse(SmallConfig(), 23).value();
  const ClusteringAdvisor advisor(warehouse.schema);
  const Workload mu =
      tpcd::SectionSixWorkload(advisor.Lattice(), 27).value();
  const auto order = advisor.RecommendedOrder(mu).value();
  EXPECT_TRUE(order->Validate().ok());
  EXPECT_EQ(order->name().rfind("snaked-path", 0), 0u);
}

TEST(AdvisorTest, RequestedStrategiesControlTheCandidateSet) {
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Symmetric(2, 2, 2).value());
  const ClusteringAdvisor advisor(schema);
  const Workload mu = Workload::Uniform(advisor.Lattice());

  EvaluationRequest bare{mu};
  bare.strategies = {"lattice-paths"};
  const Recommendation rec = advisor.Advise(bare).value();
  for (const StrategyReport& report : rec.ranked) {
    EXPECT_TRUE(report.name.find("path") != std::string::npos)
        << report.name;
    EXPECT_FALSE(report.io.has_value());
  }

  const Recommendation all = advisor.Advise(EvaluationRequest{mu}).value();
  EXPECT_GT(all.ranked.size(), rec.ranked.size());
  bool saw_hilbert = false, saw_row_major = false;
  for (const StrategyReport& report : all.ranked) {
    saw_hilbert |= report.name == "hilbert";
    saw_row_major |= report.name.rfind("row-major", 0) == 0;
  }
  EXPECT_TRUE(saw_hilbert);
  EXPECT_TRUE(saw_row_major);
}

TEST(AdvisorTest, CurvesSkippedWhereInapplicable) {
  // Non-power-of-two extents: Z/Gray/Hilbert silently drop out instead of
  // failing the whole recommendation.
  const auto warehouse = tpcd::GenerateWarehouse(SmallConfig(), 37).value();
  const ClusteringAdvisor advisor(warehouse.schema);
  const Workload mu = tpcd::SectionSixWorkload(advisor.Lattice(), 1).value();
  const Recommendation rec = advisor.Advise(EvaluationRequest{mu}).value();
  for (const StrategyReport& report : rec.ranked) {
    EXPECT_EQ(report.name.find("hilbert"), std::string::npos);
    EXPECT_EQ(report.name.find("z-curve"), std::string::npos);
  }
}

TEST(AdvisorTest, RejectsForeignWorkload) {
  const auto warehouse = tpcd::GenerateWarehouse(SmallConfig(), 29).value();
  const ClusteringAdvisor advisor(warehouse.schema);
  auto other = QueryClassLattice::FromFanouts({{2.0}, {2.0}}).value();
  EXPECT_FALSE(advisor.Advise(EvaluationRequest{Workload::Uniform(other)}).ok());
}

TEST(AdvisorTest, ToySchemaRecommendationMatchesTheory) {
  // On the paper's 4x4 toy grid with the uniform workload, the advisor must
  // find the cost-15/9 optimal path and a snaked order at least as good as
  // Hilbert (Theorem 2: some snaked path is globally optimal).
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Symmetric(2, 2, 2).value());
  const ClusteringAdvisor advisor(schema);
  const Workload mu = Workload::Uniform(advisor.Lattice());
  const Recommendation rec = advisor.Advise(EvaluationRequest{mu}).value();
  EXPECT_NEAR(rec.optimal_path_cost, 15.0 / 9, 1e-12);
  double hilbert_cost = -1.0;
  for (const auto& report : rec.ranked) {
    if (report.name == "hilbert") hilbert_cost = report.expected_cost;
  }
  ASSERT_GE(hilbert_cost, 0.0) << "hilbert baseline missing";
  EXPECT_LE(rec.best().expected_cost, hilbert_cost + 1e-12);
}

}  // namespace
}  // namespace snakes
