#include <gtest/gtest.h>

#include <memory>

#include "curves/path_order.h"
#include "curves/row_major.h"
#include "path/snaked_dp.h"
#include "storage/file_store.h"
#include "storage/query_engine.h"
#include "tpcd/dbgen.h"
#include "tpcd/workloads.h"
#include "util/clock.h"
#include "util/rng.h"

namespace snakes {
namespace {

class FileStoreTest : public ::testing::Test {
 protected:
  FileStoreTest() {
    tpcd::Config config;
    config.parts_per_mfgr = 4;
    config.num_mfgrs = 3;
    config.num_suppliers = 4;
    config.months_per_year = 6;
    config.num_years = 2;
    config.num_orders = 3'000;
    warehouse_ = tpcd::GenerateWarehouse(config, 47).value();
  }

  std::shared_ptr<const PackedLayout> MakeLayout(
      std::shared_ptr<const Linearization> lin, StorageConfig config) {
    return std::make_shared<PackedLayout>(
        PackedLayout::Pack(std::move(lin), warehouse_.facts, config).value());
  }

  tpcd::Warehouse warehouse_;
};

TEST_F(FileStoreTest, FileSizeMatchesPager) {
  auto lin = std::shared_ptr<const Linearization>(
      RowMajorOrder::Make(warehouse_.schema, {0, 1, 2}).value());
  const StorageConfig config{8192, 125};
  auto layout = MakeLayout(lin, config);
  const std::string path = ::testing::TempDir() + "/facts.bin";
  auto store = FileStore::Create(path, layout);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store->file_bytes(), layout->num_pages() * config.page_size_bytes);
}

TEST_F(FileStoreTest, PhysicalReadsMatchSimulatorAndFacts) {
  // The ground-truth test: answers from real page reads equal the fact
  // table; pages and seeks equal the simulator's predictions, for queries
  // of every class under two different clusterings.
  const QueryClassLattice lat(*warehouse_.schema);
  const Workload mu = tpcd::SectionSixWorkload(lat, 7).value();
  const auto dp = FindOptimalSnakedLatticePath(mu).value();

  std::vector<std::shared_ptr<const Linearization>> orders;
  orders.emplace_back(
      MakePathOrder(warehouse_.schema, dp.path, true).value());
  orders.emplace_back(
      RowMajorOrder::Make(warehouse_.schema, {2, 0, 1}).value());

  Rng rng(3);
  for (size_t o = 0; o < orders.size(); ++o) {
    auto layout = MakeLayout(orders[o], StorageConfig{1024, 64});
    const std::string path = ::testing::TempDir() + "/facts" +
                             std::to_string(o) + ".bin";
    auto store = FileStore::Create(path, layout);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    const QueryEngine simulated(*layout);

    for (uint64_t ci = 0; ci < lat.size(); ++ci) {
      const GridQuery q =
          SampleQuery(*warehouse_.schema, lat.ClassAt(ci), &rng);
      const QueryAnswer physical = store->Execute(q).value();
      const QueryAnswer expected = simulated.Execute(q);
      EXPECT_EQ(physical.count, expected.count) << q.ToString();
      EXPECT_NEAR(physical.sum, expected.sum, 1e-6 * (1.0 + expected.sum))
          << q.ToString();
      EXPECT_EQ(physical.io.pages, expected.io.pages) << q.ToString();
      EXPECT_EQ(physical.io.seeks, expected.io.seeks) << q.ToString();
    }
  }
}

TEST_F(FileStoreTest, ExecuteTimedTakesExactlyTwoClockReadings) {
  // The timing contract the calibration sweep depends on: one reading
  // before the file opens, one after the last page — nothing in between.
  // Under a FakeClock that advances a fixed step per reading, every
  // measured interval is therefore exactly one step, for every query class.
  auto lin = std::shared_ptr<const Linearization>(
      RowMajorOrder::Make(warehouse_.schema, {0, 1, 2}).value());
  auto layout = MakeLayout(lin, StorageConfig{1024, 64});
  const std::string path = ::testing::TempDir() + "/timed.bin";
  auto store = FileStore::Create(path, layout);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  const QueryClassLattice lat(*warehouse_.schema);
  Rng rng(9);
  FakeClock clock(/*start_ns=*/5'000, /*step_ns=*/750);
  for (uint64_t ci = 0; ci < lat.size(); ++ci) {
    const GridQuery q = SampleQuery(*warehouse_.schema, lat.ClassAt(ci), &rng);
    const auto timed = store->ExecuteTimed(q, &clock);
    ASSERT_TRUE(timed.ok()) << timed.status().ToString();
    EXPECT_EQ(timed->elapsed_ns, 750u) << q.ToString();
  }
  // 2 readings per execution, no stray reads of the injected clock.
  EXPECT_EQ(clock.now_ns(), 5'000u + 2u * 750u * lat.size());
}

TEST_F(FileStoreTest, ExecuteTimedAnswerMatchesExecute) {
  auto lin = std::shared_ptr<const Linearization>(
      RowMajorOrder::Make(warehouse_.schema, {1, 2, 0}).value());
  auto layout = MakeLayout(lin, StorageConfig{1024, 64});
  auto store =
      FileStore::Create(::testing::TempDir() + "/timed_eq.bin", layout);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  const QueryClassLattice lat(*warehouse_.schema);
  Rng rng(21);
  for (uint64_t ci = 0; ci < lat.size(); ++ci) {
    const GridQuery q = SampleQuery(*warehouse_.schema, lat.ClassAt(ci), &rng);
    const QueryAnswer plain = store->Execute(q).value();
    const auto timed = store->ExecuteTimed(q);  // real steady clock
    ASSERT_TRUE(timed.ok()) << timed.status().ToString();
    EXPECT_EQ(timed->answer.count, plain.count) << q.ToString();
    EXPECT_EQ(timed->answer.sum, plain.sum) << q.ToString();
    EXPECT_EQ(timed->answer.io.pages, plain.io.pages) << q.ToString();
    EXPECT_EQ(timed->answer.io.seeks, plain.io.seeks) << q.ToString();
    EXPECT_GT(timed->elapsed_ns, 0u) << q.ToString();
  }
}

TEST_F(FileStoreTest, RejectsTinyRecords) {
  auto lin = std::shared_ptr<const Linearization>(
      RowMajorOrder::Make(warehouse_.schema, {0, 1, 2}).value());
  auto layout = MakeLayout(lin, StorageConfig{1024, 8});
  EXPECT_FALSE(
      FileStore::Create(::testing::TempDir() + "/tiny.bin", layout).ok());
}

}  // namespace
}  // namespace snakes
