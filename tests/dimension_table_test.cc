#include <gtest/gtest.h>

#include "hierarchy/dimension_table.h"

namespace snakes {
namespace {

// The paper's jeans dimension: style(0) -> type(1) -> all(2).
DimensionTable Jeans() {
  auto h =
      Hierarchy::Uniform("jeans", {2, 2}, {"style", "type", "all"}).value();
  return DimensionTable::Make(
             h, {{"men's levi's", "women's levi's", "men's gitano",
                  "women's gitano"},
                 {"levi's", "gitano"},
                 {"any jeans"}})
      .value();
}

TEST(DimensionTableTest, LabelsRoundTrip) {
  const DimensionTable jeans = Jeans();
  EXPECT_EQ(jeans.label(1, 0), "levi's");
  EXPECT_EQ(jeans.label(0, 3), "women's gitano");
  EXPECT_EQ(jeans.label(2, 0), "any jeans");
  EXPECT_EQ(jeans.BlockOf(1, "gitano").value(), 1u);
  EXPECT_EQ(jeans.BlockOf(0, "men's gitano").value(), 2u);
  EXPECT_FALSE(jeans.BlockOf(1, "wrangler").ok());
  EXPECT_FALSE(jeans.BlockOf(5, "levi's").ok());
}

TEST(DimensionTableTest, FindSearchesBottomUp) {
  const DimensionTable jeans = Jeans();
  const auto found = jeans.Find("levi's").value();
  EXPECT_EQ(found.first, 1);
  EXPECT_EQ(found.second, 0u);
  const auto leaf = jeans.Find("women's levi's").value();
  EXPECT_EQ(leaf.first, 0);
  EXPECT_EQ(leaf.second, 1u);
  EXPECT_FALSE(jeans.Find("nope").ok());
}

TEST(DimensionTableTest, MakeValidation) {
  auto h = Hierarchy::Uniform("d", {2}).value();
  // Wrong level count.
  EXPECT_FALSE(DimensionTable::Make(h, {{"a", "b"}}).ok());
  // Wrong member count.
  EXPECT_FALSE(DimensionTable::Make(h, {{"a"}, {"all"}}).ok());
  // Duplicate label within a level.
  EXPECT_FALSE(DimensionTable::Make(h, {{"a", "a"}, {"all"}}).ok());
  EXPECT_TRUE(DimensionTable::Make(h, {{"a", "b"}, {"all"}}).ok());
}

TEST(DimensionTableTest, FromTreeBalanced) {
  HierarchyNode root{"any location",
                     {{"ON", {{"toronto", {}}, {"ottawa", {}}}},
                      {"NY", {{"albany", {}}, {"nyc", {}}}}}};
  const DimensionTable geo = DimensionTable::FromTree("location", root).value();
  EXPECT_EQ(geo.hierarchy().num_levels(), 2);
  EXPECT_EQ(geo.label(1, 0), "ON");
  EXPECT_EQ(geo.label(0, 3), "nyc");
  EXPECT_EQ(geo.label(2, 0), "any location");
  EXPECT_EQ(geo.BlockOf(1, "NY").value(), 1u);
}

TEST(DimensionTableTest, FromTreeUnbalancedInheritsLabels) {
  // Section 4.1: monaco has no state level; its dummy node reuses the
  // member's label, so label lookups behave as if the level existed.
  HierarchyNode root{"world",
                     {{"us", {{"ny", {{"nyc", {}}, {"albany", {}}}}}},
                      {"monaco", {}}}};
  const DimensionTable geo = DimensionTable::FromTree("geo", root).value();
  EXPECT_EQ(geo.hierarchy().num_levels(), 3);
  EXPECT_EQ(geo.hierarchy().num_leaves(), 3u);
  // The lifted leaf carries its own label at every spliced level.
  const auto monaco = geo.Find("monaco").value();
  EXPECT_EQ(monaco.first, 0);  // found at the leaf level first
  EXPECT_EQ(monaco.second, 2u);
  EXPECT_EQ(geo.BlockOf(1, "monaco").value(), 1u);
  EXPECT_EQ(geo.BlockOf(2, "monaco").value(), 1u);
  EXPECT_EQ(geo.BlockOf(2, "us").value(), 0u);
  EXPECT_EQ(geo.BlockOf(0, "nyc").value(), 0u);
}

TEST(DimensionTableTest, FromTreeSingleLeaf) {
  HierarchyNode root{"only", {}};
  const DimensionTable t = DimensionTable::FromTree("unit", root).value();
  EXPECT_EQ(t.hierarchy().num_levels(), 0);
  EXPECT_EQ(t.label(0, 0), "only");
}

}  // namespace
}  // namespace snakes
