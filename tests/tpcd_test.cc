#include <gtest/gtest.h>

#include "tpcd/dbgen.h"
#include "tpcd/queries.h"
#include "tpcd/schema.h"
#include "tpcd/workloads.h"

namespace snakes {
namespace {

TEST(TpcdSchemaTest, DefaultShapeMatchesSection61) {
  tpcd::Config config;
  const StarSchema schema = tpcd::BuildSchema(config).value();
  ASSERT_EQ(schema.num_dims(), 3);
  EXPECT_EQ(schema.dim(tpcd::kPartsDim).name(), "parts");
  EXPECT_EQ(schema.dim(tpcd::kPartsDim).num_leaves(), 200u);
  EXPECT_EQ(schema.dim(tpcd::kPartsDim).num_blocks(1), 5u);
  EXPECT_EQ(schema.dim(tpcd::kSupplierDim).num_leaves(), 10u);
  EXPECT_EQ(schema.dim(tpcd::kTimeDim).num_leaves(), 84u);
  EXPECT_EQ(schema.dim(tpcd::kTimeDim).num_blocks(1), 7u);
  EXPECT_EQ(schema.num_cells(), 200u * 10 * 84);
  // 3 x 2 x 3 level choices -> 18 query classes.
  EXPECT_EQ(schema.lattice_size(), 18u);
  EXPECT_EQ(schema.dim(tpcd::kTimeDim).level_name(1), "year");
}

TEST(TpcdSchemaTest, FanoutSweepShapes) {
  for (uint64_t fanout : {4u, 10u, 40u}) {
    tpcd::Config config;
    config.parts_per_mfgr = fanout;
    const StarSchema schema = tpcd::BuildSchema(config).value();
    EXPECT_EQ(schema.dim(tpcd::kPartsDim).num_leaves(), 5 * fanout);
    EXPECT_DOUBLE_EQ(schema.dim(tpcd::kPartsDim).avg_fanout(1),
                     static_cast<double>(fanout));
  }
}

TEST(TpcdSchemaTest, RejectsDegenerateConfig) {
  tpcd::Config config;
  config.num_years = 0;
  EXPECT_FALSE(tpcd::BuildSchema(config).ok());
}

TEST(TpcdDbgenTest, GeneratesExpectedVolume) {
  tpcd::Config config;
  config.num_orders = 20'000;
  const auto warehouse = tpcd::GenerateWarehouse(config, 7).value();
  // 1..7 lineitems per order -> expectation 4 per order.
  EXPECT_NEAR(static_cast<double>(warehouse.facts->total_records()),
              4.0 * config.num_orders, 0.05 * 4 * config.num_orders);
  // The grid should be substantially occupied at this scale.
  EXPECT_GT(warehouse.facts->NumOccupiedCells(),
            warehouse.facts->num_cells() / 4);
}

TEST(TpcdDbgenTest, DeterministicForSeed) {
  tpcd::Config config;
  config.num_orders = 2'000;
  const auto w1 = tpcd::GenerateWarehouse(config, 123).value();
  const auto w2 = tpcd::GenerateWarehouse(config, 123).value();
  ASSERT_EQ(w1.facts->total_records(), w2.facts->total_records());
  for (CellId id = 0; id < w1.facts->num_cells(); ++id) {
    ASSERT_EQ(w1.facts->count(id), w2.facts->count(id)) << "cell " << id;
  }
  const auto w3 = tpcd::GenerateWarehouse(config, 124).value();
  bool any_diff = false;
  for (CellId id = 0; id < w1.facts->num_cells() && !any_diff; ++id) {
    any_diff = w1.facts->count(id) != w3.facts->count(id);
  }
  EXPECT_TRUE(any_diff);
}

TEST(TpcdDbgenTest, SkewConcentratesParts) {
  tpcd::Config uniform_config;
  uniform_config.num_orders = 20'000;
  tpcd::Config skew_config = uniform_config;
  skew_config.part_skew_theta = 1.0;
  const auto uniform = tpcd::GenerateWarehouse(uniform_config, 5).value();
  const auto skewed = tpcd::GenerateWarehouse(skew_config, 5).value();

  auto part_share = [](const tpcd::Warehouse& w) {
    // Fraction of records on the first 10 parts.
    const StarSchema& schema = *w.schema;
    uint64_t first = 0, total = 0;
    for (CellId id = 0; id < w.facts->num_cells(); ++id) {
      const CellCoord c = schema.Unflatten(id);
      total += w.facts->count(id);
      if (c[tpcd::kPartsDim] < 10) first += w.facts->count(id);
    }
    return static_cast<double>(first) / static_cast<double>(total);
  };
  EXPECT_GT(part_share(skewed), 2.0 * part_share(uniform));
}

TEST(TpcdWorkloadTest, RampVectorsMatchSection62) {
  using tpcd::Ramp;
  EXPECT_EQ(tpcd::RampProbabilities(3, Ramp::kUp),
            (std::vector<double>{0.1, 0.3, 0.6}));
  EXPECT_EQ(tpcd::RampProbabilities(3, Ramp::kDown),
            (std::vector<double>{0.6, 0.3, 0.1}));
  EXPECT_EQ(tpcd::RampProbabilities(3, Ramp::kEven),
            (std::vector<double>{0.33, 0.33, 0.34}));
  EXPECT_EQ(tpcd::RampProbabilities(2, Ramp::kUp),
            (std::vector<double>{0.2, 0.8}));
  EXPECT_EQ(tpcd::RampProbabilities(2, Ramp::kDown),
            (std::vector<double>{0.8, 0.2}));
  EXPECT_EQ(tpcd::RampProbabilities(2, Ramp::kEven),
            (std::vector<double>{0.5, 0.5}));
  // Generic fallback stays a distribution.
  const auto generic = tpcd::RampProbabilities(4, Ramp::kUp);
  double sum = 0;
  for (double p : generic) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_LT(generic.front(), generic.back());
}

TEST(TpcdWorkloadTest, WorkloadSevenMatchesPaperDescription) {
  // Section 6.3: workload 7 puts low probability on the low levels of time
  // and parts and the opposite in supplier.
  tpcd::Config config;
  const auto schema = tpcd::BuildSharedSchema(config).value();
  const QueryClassLattice lat(*schema);
  const Workload w7 = tpcd::SectionSixWorkload(lat, 7).value();
  EXPECT_EQ(tpcd::DescribeWorkload(7), "parts:up supplier:down time:up");
  // parts: up -> P(level 2) = 0.6; supplier: down -> P(level 0) = 0.8.
  QueryClass top_parts{2, 0, 2};
  EXPECT_NEAR(w7.probability(top_parts), 0.6 * 0.8 * 0.6, 1e-12);
}

TEST(TpcdWorkloadTest, AllTwentySevenAreDistinctDistributions) {
  tpcd::Config config;
  const auto schema = tpcd::BuildSharedSchema(config).value();
  const QueryClassLattice lat(*schema);
  const auto all = tpcd::AllSectionSixWorkloads(lat).value();
  ASSERT_EQ(all.size(), 27u);
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      bool same = true;
      for (uint64_t c = 0; c < lat.size() && same; ++c) {
        same = std::abs(all[i].probability_at(c) - all[j].probability_at(c)) <
               1e-12;
      }
      EXPECT_FALSE(same) << "workloads " << i + 1 << " and " << j + 1;
    }
  }
}

TEST(TpcdWorkloadTest, IdValidation) {
  tpcd::Config config;
  const auto schema = tpcd::BuildSharedSchema(config).value();
  const QueryClassLattice lat(*schema);
  EXPECT_FALSE(tpcd::SectionSixWorkload(lat, 0).ok());
  EXPECT_FALSE(tpcd::SectionSixWorkload(lat, 28).ok());
  auto lat2 = QueryClassLattice::FromFanouts({{2.0}, {2.0}}).value();
  EXPECT_FALSE(tpcd::SectionSixWorkload(lat2, 1).ok());
}

TEST(TpcdQueriesTest, SevenBenchmarkQueriesInRange) {
  tpcd::Config config;
  const auto schema = tpcd::BuildSharedSchema(config).value();
  const QueryClassLattice lat(*schema);
  const auto queries = tpcd::BenchmarkQueries();
  EXPECT_EQ(queries.size(), 7u);
  for (const auto& q : queries) {
    ASSERT_EQ(q.cls.num_dims(), 3) << q.name;
    for (int d = 0; d < 3; ++d) {
      EXPECT_GE(q.cls.level(d), 0) << q.name;
      EXPECT_LE(q.cls.level(d), lat.levels(d)) << q.name;
    }
  }
}

TEST(TpcdQueriesTest, BenchmarkMixWorkload) {
  tpcd::Config config;
  const auto schema = tpcd::BuildSharedSchema(config).value();
  const QueryClassLattice lat(*schema);
  const Workload mix = tpcd::BenchmarkMixWorkload(lat).value();
  double sum = 0.0;
  for (uint64_t i = 0; i < lat.size(); ++i) sum += mix.probability_at(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Q5 and Q7 share a class, so its probability doubles.
  EXPECT_NEAR(mix.probability(QueryClass{2, 0, 1}), 2.0 / 7, 1e-9);
  EXPECT_FALSE(
      tpcd::BenchmarkMixWorkload(lat, {1.0, 2.0}).ok());
}

}  // namespace
}  // namespace snakes
