#include <gtest/gtest.h>

#include "cost/workload_cost.h"
#include "hierarchy/star_schema.h"
#include "lattice/workload.h"
#include "path/dpkd.h"
#include "path/snaked_dp.h"
#include "util/rng.h"

namespace snakes {
namespace {

struct SnakedDpCase {
  std::vector<std::vector<double>> fanouts;
  uint64_t seed;
};

void PrintTo(const SnakedDpCase& c, std::ostream* os) {
  *os << "fanouts[";
  for (size_t d = 0; d < c.fanouts.size(); ++d) {
    if (d) *os << "|";
    for (size_t i = 0; i < c.fanouts[d].size(); ++i) {
      if (i) *os << ",";
      *os << c.fanouts[d][i];
    }
  }
  *os << "] seed " << c.seed;
}

class SnakedDpPropertyTest : public ::testing::TestWithParam<SnakedDpCase> {};

TEST_P(SnakedDpPropertyTest, DpMatchesBruteForce) {
  const SnakedDpCase& param = GetParam();
  const auto lat = QueryClassLattice::FromFanouts(param.fanouts).value();
  Rng rng(param.seed);
  for (int trial = 0; trial < 20; ++trial) {
    const Workload mu = Workload::Random(lat, &rng);
    const auto dp = FindOptimalSnakedLatticePath(mu).value();
    const auto brute = FindOptimalSnakedLatticePathBruteForce(mu).value();
    EXPECT_NEAR(dp.cost, brute.cost, 1e-9 * (1 + brute.cost));
    // The decomposed objective must agree with the direct formula on the
    // chosen path.
    EXPECT_NEAR(ExpectedSnakedPathCost(mu, dp.path), dp.cost,
                1e-9 * (1 + dp.cost));
  }
}

TEST_P(SnakedDpPropertyTest, NeverWorseThanSnakedUnsnakedOptimum) {
  // Corollary 1 from the other side: the optimal snaked path is at least as
  // good as snaking the unsnaked optimum, and at most a factor 2 better.
  const SnakedDpCase& param = GetParam();
  const auto lat = QueryClassLattice::FromFanouts(param.fanouts).value();
  Rng rng(param.seed + 1000);
  for (int trial = 0; trial < 20; ++trial) {
    const Workload mu = Workload::Random(lat, &rng);
    const auto snaked_dp = FindOptimalSnakedLatticePath(mu).value();
    const auto unsnaked_dp = FindOptimalLatticePath(mu).value();
    const double snake_of_opt = ExpectedSnakedPathCost(mu, unsnaked_dp.path);
    EXPECT_LE(snaked_dp.cost, snake_of_opt + 1e-9);
    EXPECT_LT(snake_of_opt, 2.0 * snaked_dp.cost);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Lattices, SnakedDpPropertyTest,
    ::testing::Values(
        SnakedDpCase{{{2, 2}, {2, 2}}, 201},
        SnakedDpCase{{{2, 2, 2}, {2, 2, 2}}, 202},
        SnakedDpCase{{{3, 4}, {2, 5}}, 203},
        SnakedDpCase{{{2.5, 3.5}, {4.0, 1.5}}, 204},
        SnakedDpCase{{{2, 3}, {4}, {2, 2}}, 205},
        SnakedDpCase{{{2}, {3}, {2}, {2}}, 206},
        SnakedDpCase{{{7, 2, 3}, {2}}, 207}));

TEST(SnakedDpTest, ToyUniformWorkloadOptimum) {
  // On the toy grid with the uniform workload the optimal snaked cost must
  // be <= every Table-1 strategy, including Hilbert's 49/36 (Theorem 2).
  const auto lat = QueryClassLattice::FromFanouts({{2, 2}, {2, 2}}).value();
  const auto dp = FindOptimalSnakedLatticePath(Workload::Uniform(lat)).value();
  EXPECT_LE(dp.cost, 49.0 / 36 + 1e-12);
}

TEST(SnakedDpTest, PointWorkloadReachesUnitCost) {
  const auto lat = QueryClassLattice::FromFanouts({{2, 2}, {2, 2}}).value();
  for (uint64_t i = 0; i < lat.size(); ++i) {
    const Workload mu = Workload::Point(lat, lat.ClassAt(i)).value();
    const auto dp = FindOptimalSnakedLatticePath(mu).value();
    // A snaked path through the class costs exactly 1 seek per query.
    EXPECT_NEAR(dp.cost, 1.0, 1e-12) << lat.ClassAt(i).ToString();
  }
}

TEST(SnakedDpTest, GainDecompositionMatchesDirectFormulaOnAllPaths) {
  // The per-step decomposition must reproduce ExpectedSnakedPathCost for
  // EVERY path, not just the optimum (regression against sign/indexing
  // errors in the gain table).
  const auto lat = QueryClassLattice::FromFanouts({{2, 3}, {4, 2}}).value();
  Rng rng(209);
  const Workload mu = Workload::Random(lat, &rng);
  const auto dp = FindOptimalSnakedLatticePath(mu).value();
  for (const LatticePath& path : EnumerateAllPaths(lat).value()) {
    EXPECT_GE(ExpectedSnakedPathCost(mu, path), dp.cost - 1e-9)
        << path.ToString();
  }
}

}  // namespace
}  // namespace snakes
