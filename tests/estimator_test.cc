#include <gtest/gtest.h>

#include "hierarchy/star_schema.h"
#include "lattice/estimator.h"
#include "path/dpkd.h"
#include "util/rng.h"

namespace snakes {
namespace {

QueryClassLattice ToyLattice() {
  return QueryClassLattice(StarSchema::Symmetric(2, 2, 2).value());
}

TEST(EstimatorTest, FreshEstimatorIsUniform) {
  WorkloadEstimator est(ToyLattice());
  const Workload w = est.Estimate();
  for (uint64_t i = 0; i < w.lattice().size(); ++i) {
    EXPECT_NEAR(w.probability_at(i), 1.0 / 9, 1e-12);
  }
  EXPECT_DOUBLE_EQ(est.TotalObservations(), 0.0);
}

TEST(EstimatorTest, ConvergesToTrueDistribution) {
  const QueryClassLattice lat = ToyLattice();
  const auto truth = Workload::FromMasses(
                         lat, {{QueryClass{1, 1}, 0.7}, {QueryClass{0, 2}, 0.3}})
                         .value();
  WorkloadEstimator est(lat, /*smoothing=*/1.0);
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(est.Observe(truth.Sample(&rng)).ok());
  }
  const Workload w = est.Estimate();
  EXPECT_NEAR(w.probability(QueryClass{1, 1}), 0.7, 0.02);
  EXPECT_NEAR(w.probability(QueryClass{0, 2}), 0.3, 0.02);
  // Smoothing keeps unseen classes tiny but non-zero.
  EXPECT_GT(w.probability(QueryClass{2, 0}), 0.0);
  EXPECT_LT(w.probability(QueryClass{2, 0}), 1e-3);
}

TEST(EstimatorTest, ObserveCountMatchesRepeatedObserve) {
  const QueryClassLattice lat = ToyLattice();
  WorkloadEstimator a(lat), b(lat);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(a.Observe(QueryClass{1, 0}).ok());
  ASSERT_TRUE(b.ObserveCount(QueryClass{1, 0}, 10.0).ok());
  for (uint64_t i = 0; i < lat.size(); ++i) {
    EXPECT_NEAR(a.Estimate().probability_at(i), b.Estimate().probability_at(i),
                1e-12);
  }
}

TEST(EstimatorTest, DecayTracksDrift) {
  const QueryClassLattice lat = ToyLattice();
  WorkloadEstimator est(lat, /*smoothing=*/0.1, /*decay=*/0.99);
  // Phase 1: all mass on (0,0).
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(est.Observe(QueryClass{0, 0}).ok());
  EXPECT_GT(est.Estimate().probability(QueryClass{0, 0}), 0.9);
  // Phase 2: the workload drifts to (2,2); decay forgets phase 1.
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(est.Observe(QueryClass{2, 2}).ok());
  EXPECT_GT(est.Estimate().probability(QueryClass{2, 2}), 0.9);
  EXPECT_LT(est.Estimate().probability(QueryClass{0, 0}), 0.1);
}

TEST(EstimatorTest, Validation) {
  const QueryClassLattice lat = ToyLattice();
  WorkloadEstimator est(lat);
  EXPECT_FALSE(est.Observe(QueryClass{0, 3}).ok());
  EXPECT_FALSE(est.Observe(QueryClass{0, 0, 0}).ok());
  EXPECT_FALSE(est.ObserveCount(QueryClass{0, 0}, -1.0).ok());
}

TEST(EstimatorTest, DrivesTheDpEndToEnd) {
  // The intended loop: observe, estimate, re-optimize. A stream of
  // column-style queries must steer the DP to a path through (2,0).
  const QueryClassLattice lat = ToyLattice();
  WorkloadEstimator est(lat, /*smoothing=*/0.01);
  for (int i = 0; i < 500; ++i) ASSERT_TRUE(est.Observe(QueryClass{2, 0}).ok());
  const auto dp = FindOptimalLatticePath(est.Estimate()).value();
  EXPECT_TRUE(dp.path.Contains(QueryClass{2, 0}));
}

}  // namespace
}  // namespace snakes
