#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cost/edge_model.h"
#include "curves/path_order.h"
#include "curves/row_major.h"
#include "cv/characteristic_vector.h"
#include "cv/general_transform.h"
#include "cv/transform.h"
#include "hierarchy/star_schema.h"
#include "path/lattice_path.h"
#include "util/rng.h"

namespace snakes {
namespace {

// Per-class covered counts may only grow under elimination (so per-class
// costs may only shrink), and the edge total must be conserved.
void CheckImprovement(const StarSchema& schema, const EdgeHistogram& before,
                      const EdgeHistogram& after) {
  ASSERT_EQ(before.Total(), after.Total());
  EXPECT_EQ(after.NumDiagonal(), 0u);
  const ClassCostTable cost_before = CostsFromHistogram(schema, before);
  const ClassCostTable cost_after = CostsFromHistogram(schema, after);
  for (uint64_t i = 0; i < before.lattice.size(); ++i) {
    const QueryClass cls = before.lattice.ClassAt(i);
    EXPECT_LE(cost_after.AvgDouble(cls), cost_before.AvgDouble(cls) + 1e-12)
        << cls.ToString();
  }
}

TEST(GeneralTransformTest, MatchesBinarySpecialCase) {
  // On binary 2-D schemas the generalized elimination must agree with the
  // BinaryCV-based EliminateDiagonals on the resulting class costs.
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Symmetric(2, 3, 2).value());
  const QueryClassLattice lat(*schema);
  for (const LatticePath& path : EnumerateAllPaths(lat).value()) {
    auto lin = PathOrder::Make(schema, path, false).value();
    const EdgeHistogram hist = MeasureEdgeHistogram(*lin);
    const EdgeHistogram general =
        EliminateDiagonalsGeneral(*schema, hist).value();
    CheckImprovement(*schema, hist, general);

    const BinaryCV cv = BinaryCV::FromHistogram(hist).value();
    const BinaryCV binary = EliminateDiagonals(cv).value();
    const BinaryCV general_cv = BinaryCV::FromHistogram(general).value();
    // Both splitters prefer the A side greedily, so they agree exactly.
    EXPECT_EQ(general_cv.ToString(), binary.ToString()) << path.ToString();
  }
}

TEST(GeneralTransformTest, ThreeDimensionalStrategies) {
  auto a = Hierarchy::Uniform("a", {3, 2}).value();
  auto b = Hierarchy::Uniform("b", {2}).value();
  auto c = Hierarchy::Uniform("c", {2, 2}).value();
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Make("s", {a, b, c}).value());
  const QueryClassLattice lat(*schema);
  for (auto& rm : AllRowMajorOrders(schema)) {
    const EdgeHistogram hist = MeasureEdgeHistogram(*rm);
    const auto general = EliminateDiagonalsGeneral(*schema, hist);
    ASSERT_TRUE(general.ok()) << rm->name() << ": "
                              << general.status().ToString();
    CheckImprovement(*schema, hist, general.value());
  }
}

TEST(GeneralTransformTest, RandomizedPathsAlwaysEliminate) {
  Rng rng(61);
  for (int trial = 0; trial < 15; ++trial) {
    const int k = 2 + static_cast<int>(rng.Below(2));
    std::vector<Hierarchy> dims;
    for (int d = 0; d < k; ++d) {
      std::vector<uint64_t> fanouts;
      const int levels = 1 + static_cast<int>(rng.Below(2));
      for (int l = 0; l < levels; ++l) fanouts.push_back(2 + rng.Below(3));
      dims.push_back(
          Hierarchy::Uniform("d" + std::to_string(d), fanouts).value());
    }
    auto schema = std::make_shared<StarSchema>(
        StarSchema::Make("r", std::move(dims)).value());
    const QueryClassLattice lat(*schema);
    std::vector<int> steps;
    for (int d = 0; d < k; ++d) {
      for (int l = 0; l < lat.levels(d); ++l) steps.push_back(d);
    }
    for (size_t i = steps.size(); i > 1; --i) {
      std::swap(steps[i - 1], steps[rng.Below(i)]);
    }
    const LatticePath path = LatticePath::FromSteps(lat, steps).value();
    auto lin = PathOrder::Make(schema, path, false).value();
    const EdgeHistogram hist = MeasureEdgeHistogram(*lin);
    const auto general = EliminateDiagonalsGeneral(*schema, hist);
    ASSERT_TRUE(general.ok()) << path.ToString() << ": "
                              << general.status().ToString();
    CheckImprovement(*schema, hist, general.value());
  }
}

TEST(GeneralTransformTest, NonDiagonalInputIsFixpoint) {
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Symmetric(2, 2, 2).value());
  const QueryClassLattice lat(*schema);
  const LatticePath path = LatticePath::RoundRobin(lat);
  auto lin = PathOrder::Make(schema, path, true).value();
  const EdgeHistogram hist = MeasureEdgeHistogram(*lin);
  ASSERT_TRUE(IsNonDiagonalHistogram(hist));
  const EdgeHistogram out = EliminateDiagonalsGeneral(*schema, hist).value();
  EXPECT_EQ(out.count, hist.count);
}

TEST(GeneralTransformTest, RejectsInconsistentHistogram) {
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Symmetric(2, 2, 2).value());
  EdgeHistogram bogus{QueryClassLattice(*schema),
                      std::vector<uint64_t>(9, 0)};
  // 15 edges, but all of the finest type A_1 — exceeds the 8 available.
  bogus.count[bogus.lattice.Index(QueryClass{1, 0})] = 15;
  EXPECT_FALSE(EliminateDiagonalsGeneral(*schema, bogus).ok());
}

}  // namespace
}  // namespace snakes
