// Run-emission throughput on the TPC-D warehouse: batched class emission
// (AppendClassRuns into a reused RunArena, with the degenerate-class
// detector) against the seed's per-query loop (QueryAt + BoxOf + AppendRuns
// into a cleared vector per box).
//
// Setup: the Table-4 LineItem warehouse grid (200 x 10 x 84) under the
// snaked optimal lattice path for the uniform workload — the advisor's
// hottest emission workload. The payoff target is the *fine* classes, the
// ones at leaf level in the path's innermost dimension ((0,*,*)-style):
// their queries are tiny and numerous, so the seed loop pays per-query
// setup (box construction, emitter state) millions of times while the
// batched emitter pays once per class — and the fully-degenerate classes
// short-circuit to the closed form without emitting at all. The guard
// SNAKES_CHECKs >= 5x aggregate fine-class speedup and <= 2% regression on
// the coarse classes, checks both paths emit identical fragment counts, and
// writes BENCH_run_emission.json.
//
//   $ ./micro_run_emission

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "curves/path_order.h"
#include "curves/rank_run.h"
#include "curves/run_arena.h"
#include "lattice/grid_query.h"
#include "lattice/workload.h"
#include "path/snaked_dp.h"
#include "tpcd/dbgen.h"
#include "util/logging.h"
#include "util/text_table.h"

namespace snakes {
namespace {

using Clock = std::chrono::steady_clock;

/// Milliseconds per call: adaptively batches `fn` so one repetition lasts
/// long enough to time, then takes the best of three repetitions (the
/// steady-state cost, robust against scheduler noise on small classes).
double TimeMs(const std::function<void()>& fn) {
  auto once = [&fn]() {
    const auto start = Clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
  };
  const double single = once();
  const int iters =
      static_cast<int>(std::min(1000.0, std::max(1.0, 2.0 / single)));
  double best = single;
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = Clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count() /
        iters;
    best = std::min(best, ms);
  }
  return best;
}

struct ClassEmission {
  QueryClass cls;
  uint64_t num_queries = 0;
  uint64_t fragments = 0;
  bool degenerate = false;
  double seed_ms = 0.0;
  double batched_ms = 0.0;
};

void Run() {
  tpcd::Config config;
  const auto warehouse = tpcd::GenerateWarehouse(config).ValueOrDie();
  const StarSchema& schema = *warehouse.schema;
  const QueryClassLattice lattice(schema);

  const Workload uniform = Workload::Uniform(lattice);
  const auto dp = FindOptimalSnakedLatticePath(uniform).ValueOrDie();
  const auto order =
      MakePathOrder(warehouse.schema, dp.path, /*snaked=*/true).ValueOrDie();
  const Linearization& lin = *order;
  std::fprintf(stderr, "emitting under %s (%llu cells)...\n",
               lin.name().c_str(),
               static_cast<unsigned long long>(lin.num_cells()));

  RunArena arena;
  std::vector<RankRun> runs;
  std::vector<ClassEmission> per_class;
  for (uint64_t i = 0; i < lattice.size(); ++i) {
    ClassEmission em;
    em.cls = lattice.ClassAt(i);
    em.num_queries = NumQueriesInClass(schema, em.cls);
    em.degenerate = lin.ClassRunsDegenerate(em.cls);

    // Seed path: one AppendRuns per query box into a cleared vector — the
    // pre-batching inner loop of cost measurement.
    uint64_t seed_fragments = 0;
    const auto seed_pass = [&]() {
      seed_fragments = 0;
      for (uint64_t q = 0; q < em.num_queries; ++q) {
        runs.clear();
        lin.AppendRuns(BoxOf(schema, QueryAt(schema, em.cls, q)), &runs);
        seed_fragments += runs.size();
      }
    };
    em.seed_ms = TimeMs(seed_pass);

    // Production path: the detector's closed form, or one batched
    // subdivision pass over the whole class into the reused arena.
    uint64_t batched_fragments = 0;
    const auto batched_pass = [&]() {
      if (lin.ClassRunsDegenerate(em.cls)) {
        batched_fragments = lin.num_cells();
      } else {
        lin.AppendClassRuns(em.cls, &arena);
        batched_fragments = arena.num_runs();
      }
    };
    em.batched_ms = TimeMs(batched_pass);

    SNAKES_CHECK(seed_fragments == batched_fragments)
        << "emission divergence in class " << em.cls.ToString() << ": seed "
        << seed_fragments << " vs batched " << batched_fragments;
    em.fragments = batched_fragments;
    per_class.push_back(em);
  }

  // Fine classes: leaf level in the path's innermost dimension — the
  // (0,*,*)-style classes whose queries are smallest and most numerous.
  const int inner_dim = dp.path.steps().front();
  double fine_seed_ms = 0.0, fine_batched_ms = 0.0;
  double coarse_seed_ms = 0.0, coarse_batched_ms = 0.0;
  TextTable table({"class", "queries", "fragments", "degenerate", "seed ms",
                   "batched ms", "speedup"});
  for (const ClassEmission& em : per_class) {
    const bool fine = em.cls.level(inner_dim) == 0;
    (fine ? fine_seed_ms : coarse_seed_ms) += em.seed_ms;
    (fine ? fine_batched_ms : coarse_batched_ms) += em.batched_ms;
    table.AddRow({em.cls.ToString() + (fine ? " *" : ""),
                  std::to_string(em.num_queries),
                  std::to_string(em.fragments), em.degenerate ? "yes" : "no",
                  FormatDouble(em.seed_ms, 3), FormatDouble(em.batched_ms, 3),
                  FormatDouble(em.batched_ms > 0.0
                                   ? em.seed_ms / em.batched_ms
                                   : 0.0,
                               1)});
  }
  const double fine_speedup =
      fine_batched_ms > 0.0 ? fine_seed_ms / fine_batched_ms : 0.0;
  const double coarse_ratio =
      coarse_seed_ms > 0.0 ? coarse_batched_ms / coarse_seed_ms : 0.0;
  std::printf("%s\n", table.Render().c_str());
  std::printf("fine classes (*): %.2f ms seed vs %.2f ms batched (%.1fx); "
              "coarse: %.2f ms seed vs %.2f ms batched (%.2fx of seed)\n",
              fine_seed_ms, fine_batched_ms, fine_speedup, coarse_seed_ms,
              coarse_batched_ms, coarse_ratio);

  SNAKES_CHECK(fine_speedup >= 5.0)
      << "batched emission is only " << fine_speedup
      << "x the seed loop on fine classes (need >= 5x)";
  SNAKES_CHECK(coarse_ratio <= 1.02)
      << "batched emission regressed coarse classes to " << coarse_ratio
      << "x the seed loop (allowed <= 1.02x)";

  std::string json = "{\n  \"bench\": \"run_emission\",\n";
  json += "  \"layout\": \"" + lin.name() + "\",\n";
  json += "  \"cells\": " + std::to_string(lin.num_cells()) + ",\n";
  json += "  \"fine_seed_ms\": " + FormatDouble(fine_seed_ms, 3) + ",\n";
  json += "  \"fine_batched_ms\": " + FormatDouble(fine_batched_ms, 3) + ",\n";
  json += "  \"fine_speedup\": " + FormatDouble(fine_speedup, 2) + ",\n";
  json += "  \"coarse_seed_ms\": " + FormatDouble(coarse_seed_ms, 3) + ",\n";
  json +=
      "  \"coarse_batched_ms\": " + FormatDouble(coarse_batched_ms, 3) + ",\n";
  json += "  \"coarse_ratio\": " + FormatDouble(coarse_ratio, 3) + ",\n";
  json += "  \"required_fine_speedup\": 5.0,\n";
  json += "  \"allowed_coarse_ratio\": 1.02,\n";
  json += "  \"classes\": [\n";
  for (size_t i = 0; i < per_class.size(); ++i) {
    const ClassEmission& em = per_class[i];
    json += "    {\"class\": \"" + em.cls.ToString() + "\", \"queries\": " +
            std::to_string(em.num_queries) + ", \"fragments\": " +
            std::to_string(em.fragments) + ", \"degenerate\": " +
            (em.degenerate ? "true" : "false") + ", \"seed_ms\": " +
            FormatDouble(em.seed_ms, 4) + ", \"batched_ms\": " +
            FormatDouble(em.batched_ms, 4) + "}";
    json += i + 1 < per_class.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  const char* path = "BENCH_run_emission.json";
  std::ofstream out(path);
  out << json;
  SNAKES_CHECK(out.good()) << "failed to write " << path;
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace snakes

int main() {
  snakes::Run();
  return 0;
}
