// Ablation for Theorem 3 (limit on the benefit of snaking): sweeps every
// lattice path of n-level binary 2-D schemas and reports the worst observed
// snaking benefit per n, against the analytic bound
// 1 / (1/2 + 1/2^(n+1)) < 2; also reports the workload-level ratio for the
// single-class workload that maximizes it.

#include <algorithm>
#include <cstdio>

#include "lattice/workload.h"
#include "path/lattice_path.h"
#include "path/snaking.h"
#include "util/logging.h"
#include "util/text_table.h"

namespace snakes {
namespace {

void Run() {
  std::printf(
      "Ablation (Theorem 3): max snaking benefit over all paths/classes\n\n");
  TextTable table({"n", "paths", "max ben_P(c)", "achieving path", "class",
                   "analytic bound", "2x bound holds"});
  for (int n = 1; n <= 5; ++n) {
    const auto lat = QueryClassLattice::FromFanouts(
                         {std::vector<double>(static_cast<size_t>(n), 2.0),
                          std::vector<double>(static_cast<size_t>(n), 2.0)})
                         .value();
    const auto paths = EnumerateAllPaths(lat).ValueOrDie();
    double worst = 1.0;
    std::string worst_path, worst_class;
    for (const LatticePath& path : paths) {
      for (uint64_t i = 0; i < lat.size(); ++i) {
        const QueryClass cls = lat.ClassAt(i);
        const double ben = SnakingBenefit(path, cls);
        if (ben > worst) {
          worst = ben;
          worst_path = path.ToString();
          worst_class = cls.ToString();
        }
      }
    }
    const double bound = TheoremThreeBound(n);
    SNAKES_CHECK(worst <= bound + 1e-9);
    table.AddRow({std::to_string(n), std::to_string(paths.size()),
                  FormatDouble(worst, 6), worst_path, worst_class,
                  FormatDouble(bound, 6), worst < 2.0 ? "yes" : "NO"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "The worst case is realized by the one-B-then-all-A path at class\n"
      "(n,0) — Section 5.2's P3 example generalized — and approaches but\n"
      "never reaches 2, exactly as Theorem 3 predicts.\n");
}

}  // namespace
}  // namespace snakes

int main() {
  snakes::Run();
  return 0;
}
