// Regenerates the paper's illustrative figures as ASCII:
//   Figure 1  — the row-major clustering P1 of the toy sales grid;
//   Figure 2  — (a) the quadrant/Z curve P2, (b) the Hilbert curve;
//   Figure 3  — the query-class lattice of the toy star schema;
//   Figure 5  — the snaked paths ~P1 and ~P2.
// Grids print the 1-based visit rank of each cell, rows = dimension A
// (location), columns = dimension B (jeans), matching the paper's layout.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "curves/z_curve.h"

namespace snakes {
namespace {

void PrintGrid(const char* title, const Linearization& lin) {
  std::printf("%s\n", title);
  const StarSchema& schema = lin.schema();
  const uint64_t rows = schema.extent(0);
  const uint64_t cols = schema.extent(1);
  std::vector<uint64_t> rank_of(rows * cols);
  lin.Walk([&](uint64_t rank, const CellCoord& coord) {
    rank_of[coord[0] * cols + coord[1]] = rank + 1;
  });
  for (uint64_t r = 0; r < rows; ++r) {
    for (uint64_t c = 0; c < cols; ++c) {
      std::printf("%3llu ",
                  static_cast<unsigned long long>(rank_of[r * cols + c]));
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void PrintLattice() {
  std::printf(
      "Figure 3: query-class lattice of the toy schema "
      "(f(A,i) = f(B,i) = 2)\n\n"
      "            (2,2)\n"
      "           /     \\\n"
      "       (1,2)     (2,1)\n"
      "      /     \\   /     \\\n"
      "  (0,2)     (1,1)     (2,0)\n"
      "      \\     /   \\     /\n"
      "       (0,1)     (1,0)\n"
      "           \\     /\n"
      "            (0,0)\n\n");
}

void Run() {
  auto schema = bench::ToySchema();
  const QueryClassLattice lattice(*schema);
  const LatticePath p1 = bench::P1(lattice);
  const LatticePath p2 = bench::P2(lattice);

  PrintGrid("Figure 1: row-major clustering P1 = " ,
            *PathOrder::Make(schema, p1, false).ValueOrDie());
  PrintGrid("Figure 2(a): quadrant / Z-curve clustering P2",
            *ZCurve::Make(schema).ValueOrDie());
  PrintGrid("Figure 2(b): Hilbert curve Hd2",
            *bench::PaperHilbert(schema));
  PrintLattice();
  PrintGrid("Figure 5(a): snaked lattice path ~P1",
            *PathOrder::Make(schema, p1, true).ValueOrDie());
  PrintGrid("Figure 5(b): snaked lattice path ~P2",
            *PathOrder::Make(schema, p2, true).ValueOrDie());
}

}  // namespace
}  // namespace snakes

int main() {
  snakes::Run();
  return 0;
}
