// google-benchmark microbenchmarks for the hot kernels underneath the
// reproduction: curve codecs (rank <-> cell), the exact edge-type cost
// model, page packing, and exact per-class I/O measurement. These are the
// costs a deployment pays to (re-)evaluate clusterings, so they are part of
// the "cheap to compute" story of Sections 4-5.

#include <benchmark/benchmark.h>

#include <memory>

#include "cost/edge_model.h"
#include "curves/hilbert.h"
#include "curves/path_order.h"
#include "curves/row_major.h"
#include "curves/z_curve.h"
#include "hierarchy/star_schema.h"
#include "storage/executor.h"
#include "storage/pager.h"
#include "tpcd/dbgen.h"
#include "util/logging.h"

namespace snakes {
namespace {

std::shared_ptr<const StarSchema> Square(int n) {
  return std::make_shared<StarSchema>(
      StarSchema::Symmetric(2, n, 2).ValueOrDie());
}

void BM_HilbertCellAt(benchmark::State& state) {
  auto schema = Square(static_cast<int>(state.range(0)));
  auto curve = HilbertCurve::Make(schema).ValueOrDie();
  const uint64_t n = curve->num_cells();
  uint64_t rank = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve->CellAt(rank));
    rank = (rank + 0x9e3779b9) % n;
  }
}
BENCHMARK(BM_HilbertCellAt)->Arg(4)->Arg(10);

void BM_ZCurveCellAt(benchmark::State& state) {
  auto schema = Square(static_cast<int>(state.range(0)));
  auto curve = ZCurve::Make(schema).ValueOrDie();
  const uint64_t n = curve->num_cells();
  uint64_t rank = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve->CellAt(rank));
    rank = (rank + 0x9e3779b9) % n;
  }
}
BENCHMARK(BM_ZCurveCellAt)->Arg(4)->Arg(10);

void BM_SnakedPathRankOf(benchmark::State& state) {
  auto schema = Square(static_cast<int>(state.range(0)));
  const QueryClassLattice lattice(*schema);
  const LatticePath path = LatticePath::RoundRobin(lattice);
  auto order = PathOrder::Make(schema, path, true).ValueOrDie();
  const uint64_t n = order->num_cells();
  uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(order->RankOf(schema->Unflatten(id)));
    id = (id + 0x9e3779b9) % n;
  }
}
BENCHMARK(BM_SnakedPathRankOf)->Arg(4)->Arg(10);

// Exact per-class costs of a strategy: one linear sweep + lattice DP.
void BM_MeasureClassCosts(benchmark::State& state) {
  auto schema = Square(static_cast<int>(state.range(0)));
  auto curve = HilbertCurve::Make(schema).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureClassCosts(*curve));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(schema->num_cells()));
}
BENCHMARK(BM_MeasureClassCosts)->Arg(4)->Arg(8)->Arg(10);

// Packing the TPC-D fact table and measuring every class exactly.
void BM_PackAndMeasureTpcd(benchmark::State& state) {
  tpcd::Config config;
  config.num_orders = 100'000;
  const auto warehouse = tpcd::GenerateWarehouse(config).ValueOrDie();
  auto lin = std::shared_ptr<const Linearization>(
      RowMajorOrder::Make(warehouse.schema, {0, 1, 2}).ValueOrDie());
  for (auto _ : state) {
    auto layout = PackedLayout::Pack(lin, warehouse.facts).ValueOrDie();
    benchmark::DoNotOptimize(IoSimulator(layout).MeasureAllClasses());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(warehouse.schema->num_cells()));
}
BENCHMARK(BM_PackAndMeasureTpcd);

}  // namespace
}  // namespace snakes

BENCHMARK_MAIN();
