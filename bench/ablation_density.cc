// Ablation: sensitivity of the Section-6 experiments to fact-table density
// (the paper omits its TPC-D scale factor, so this knob had to be
// calibrated — see DESIGN.md/EXPERIMENTS.md).
//
// For each density we report, over the 27 Section-6.2 workloads: in how many
// the snaked optimal path has the (weakly) lowest expected seeks and lowest
// normalized blocks among {snaked opt, 6 row-majors}, plus the range of the
// worst row-major's normalized blocks.
//
// Two regimes frame the calibrated default (~9.5 records/cell):
//   * dense (>= ~20 records/cell): a cell spans a page or more, page-level
//     seeks converge to the cell-level fragment model, and the snaked
//     optimal path wins seeks in 27/27 workloads;
//   * sparse (<= ~4 records/cell): many cells per page, scattered queries
//     touch every page and degrade into sequential scans, which compresses
//     seek differences and inflates normalized blocks.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "curves/path_order.h"
#include "curves/row_major.h"
#include "path/dpkd.h"
#include "storage/executor.h"
#include "storage/pager.h"
#include "tpcd/dbgen.h"
#include "tpcd/workloads.h"
#include "util/logging.h"
#include "util/text_table.h"

namespace snakes {
namespace {

void Run() {
  std::printf("Ablation: density sensitivity of the TPC-D experiment\n\n");
  TextTable table({"orders", "records/cell", "snaked best seeks",
                   "snaked best blocks", "worst-rm blocks range"});
  for (uint64_t orders :
       {75'000ull, 150'000ull, 400'000ull, 800'000ull, 1'500'000ull}) {
    tpcd::Config config;
    config.num_orders = orders;
    std::fprintf(stderr, "orders=%llu...\n",
                 static_cast<unsigned long long>(orders));
    const auto warehouse = tpcd::GenerateWarehouse(config).ValueOrDie();
    const QueryClassLattice lattice(*warehouse.schema);

    std::vector<std::vector<ClassIoStats>> row_majors;
    for (auto& rm : AllRowMajorOrders(warehouse.schema)) {
      auto layout = PackedLayout::Pack(std::move(rm), warehouse.facts);
      SNAKES_CHECK(layout.ok());
      row_majors.push_back(IoSimulator(*layout).MeasureAllClasses());
    }
    std::map<std::string, std::vector<ClassIoStats>> cache;
    int wins_seeks = 0, wins_blocks = 0;
    double worst_lo = 1e300, worst_hi = 0.0;
    for (int id = 1; id <= 27; ++id) {
      const Workload mu = tpcd::SectionSixWorkload(lattice, id).ValueOrDie();
      const auto dp = FindOptimalLatticePath(mu).ValueOrDie();
      std::string key;
      for (int d : dp.path.steps()) key += static_cast<char>('0' + d);
      auto it = cache.find(key);
      if (it == cache.end()) {
        auto layout = PackedLayout::Pack(
            MakePathOrder(warehouse.schema, dp.path, true).ValueOrDie(),
            warehouse.facts);
        SNAKES_CHECK(layout.ok());
        it = cache.emplace(key, IoSimulator(*layout).MeasureAllClasses())
                 .first;
      }
      const WorkloadIoStats snaked = IoSimulator::Expect(mu, it->second);
      double best_seeks = 1e300, best_blocks = 1e300, worst_blocks = 0.0;
      for (const auto& rm : row_majors) {
        const WorkloadIoStats io = IoSimulator::Expect(mu, rm);
        best_seeks = std::min(best_seeks, io.expected_seeks);
        best_blocks = std::min(best_blocks, io.expected_normalized_blocks);
        worst_blocks = std::max(worst_blocks, io.expected_normalized_blocks);
      }
      wins_seeks += snaked.expected_seeks <= best_seeks;
      wins_blocks += snaked.expected_normalized_blocks <= best_blocks;
      worst_lo = std::min(worst_lo, worst_blocks);
      worst_hi = std::max(worst_hi, worst_blocks);
    }
    const double density =
        static_cast<double>(warehouse.facts->total_records()) /
        static_cast<double>(warehouse.schema->num_cells());
    table.AddRow({std::to_string(orders), FormatDouble(density, 1),
                  std::to_string(wins_seeks) + "/27",
                  std::to_string(wins_blocks) + "/27",
                  FormatDouble(worst_lo, 1) + " .. " +
                      FormatDouble(worst_hi, 1)});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace
}  // namespace snakes

int main() {
  snakes::Run();
  return 0;
}
