// Calibration quality on the TPC-D warehouse: fit a CalibratedLinearModel
// to measured file_store executions and check that (a) the fit explains the
// measurements — median relative error within the 25% bound — and (b) time
// predicted by the fitted model ranks the strategies the same way the
// measured wall clock does, at least at the top: the strategy the advisor
// would pick under the fitted model is the strategy that actually ran
// fastest.
//
// Setup: a small warehouse, every registered strategy family materialized
// for the uniform workload, a calibration sweep (features from IoSimulator,
// nanoseconds from FileStore::ExecuteTimed), the in-repo least-squares fit.
// Per strategy, the sweep's samples aggregate into a measured mean and a
// predicted mean over identical feature vectors, so the ranking comparison
// is sampling-noise-only. Because the top strategies can genuinely tie
// (path vs its snaked twin differ by a few percent, inside timer noise),
// agreement is scored as measured *regret*: the strategy the model picks
// must run within 10% of the measured-fastest one. The advisor's own
// expected_ms ranking (fitted model pricing measured WorkloadIoStats) is
// reported alongside.
//
// Writes BENCH_calibration.json; SNAKES_CHECKs both guards.
//
//   $ ./micro_calibration

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/advisor.h"
#include "cost/calibration.h"
#include "cost/cost_model.h"
#include "lattice/workload.h"
#include "tpcd/dbgen.h"
#include "util/logging.h"
#include "util/text_table.h"

namespace snakes {
namespace {

struct StrategyTiming {
  double measured_ms = 0.0;
  double predicted_ms = 0.0;
  uint64_t samples = 0;
};

void Run() {
  tpcd::Config config;
  config.parts_per_mfgr = 4;
  config.num_mfgrs = 3;
  config.num_suppliers = 4;
  config.months_per_year = 6;
  config.num_years = 2;
  config.num_orders = 4'000;
  const auto warehouse = tpcd::GenerateWarehouse(config).ValueOrDie();
  const ClusteringAdvisor advisor(warehouse.schema);
  const Workload uniform = Workload::Uniform(advisor.Lattice());

  EvaluationRequest plan_request{uniform};
  const auto plan = advisor.Plan(plan_request).ValueOrDie();
  std::vector<std::shared_ptr<const Linearization>> strategies;
  for (const PlannedStrategy& s : plan.strategies) {
    strategies.push_back(s.linearization);
  }
  std::fprintf(stderr, "sweeping %zu strategies...\n", strategies.size());

  CalibrationSweepConfig sweep;
  sweep.queries_per_class = 4;
  sweep.repetitions = 3;
  sweep.scratch_path = "BENCH_calibration_scratch.bin";
  const auto samples =
      CollectCalibrationSamples(warehouse.facts, strategies, sweep)
          .ValueOrDie();
  const auto fit = FitCalibration(samples).ValueOrDie();
  const CalibratedLinearModel model = fit.ToModel();
  std::fprintf(stderr, "fit: r^2 %.4f, median rel error %.4f over %llu\n",
               fit.r_squared, fit.median_relative_error,
               static_cast<unsigned long long>(fit.num_samples));

  // Per-strategy aggregates over identical samples: the fitted model and
  // the wall clock price the same feature vectors.
  std::map<std::string, StrategyTiming> by_strategy;
  for (const CalibrationSample& sample : samples) {
    StrategyTiming& t = by_strategy[sample.strategy];
    t.measured_ms += sample.measured_ns * 1e-6;
    t.predicted_ms +=
        model.EstimateMs(sample.features, sweep.storage.page_size_bytes);
    ++t.samples;
  }
  std::string top_measured, top_predicted;
  double best_measured = 0.0, best_predicted = 0.0;
  TextTable table({"strategy", "samples", "measured ms", "predicted ms"});
  for (auto& [name, t] : by_strategy) {
    t.measured_ms /= static_cast<double>(t.samples);
    t.predicted_ms /= static_cast<double>(t.samples);
    if (top_measured.empty() || t.measured_ms < best_measured) {
      top_measured = name;
      best_measured = t.measured_ms;
    }
    if (top_predicted.empty() || t.predicted_ms < best_predicted) {
      top_predicted = name;
      best_predicted = t.predicted_ms;
    }
    table.AddRow({name, std::to_string(t.samples),
                  FormatDouble(t.measured_ms, 5),
                  FormatDouble(t.predicted_ms, 5)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("top-1 measured:  %s\ntop-1 predicted: %s\n",
              top_measured.c_str(), top_predicted.c_str());

  // The advisor's own view under the fitted model: measured WorkloadIoStats
  // priced into expected_ms (the ranking key stays the seek surrogate).
  EvaluationRequest request{uniform};
  request.measure_storage = true;
  request.facts = warehouse.facts;
  request.cost_model = std::make_shared<CalibratedLinearModel>(model);
  const auto rec = advisor.Advise(request).ValueOrDie();
  std::string advisor_top_ms;
  double advisor_best_ms = 0.0;
  for (const StrategyReport& report : rec.ranked) {
    if (advisor_top_ms.empty() || report.expected_ms < advisor_best_ms) {
      advisor_top_ms = report.name;
      advisor_best_ms = report.expected_ms;
    }
  }
  std::printf("advisor min expected_ms: %s (%.5f ms/query)\n",
              advisor_top_ms.c_str(), advisor_best_ms);

  SNAKES_CHECK(fit.median_relative_error <= 0.25)
      << "calibrated model median relative error "
      << fit.median_relative_error << " exceeds the 25% bound";
  // Top-1 agreement up to measured near-ties: picking by the fitted model
  // must cost <= 10% measured regret against the actual fastest strategy.
  const double regret =
      (by_strategy.at(top_predicted).measured_ms - best_measured) /
      best_measured;
  std::printf("model-pick measured regret: %.2f%%\n", 100.0 * regret);
  SNAKES_CHECK(regret <= 0.10)
      << "fitted model picks " << top_predicted << " which ran "
      << 100.0 * regret << "% slower than the measured-fastest "
      << top_measured;

  std::string json = "{\n  \"bench\": \"calibration\",\n";
  json += "  \"records\": " + std::to_string(warehouse.facts->total_records()) +
          ",\n";
  json += "  \"strategies\": " + std::to_string(by_strategy.size()) + ",\n";
  json += "  \"samples\": " + std::to_string(samples.size()) + ",\n";
  json += "  \"r_squared\": " + FormatDouble(fit.r_squared, 6) + ",\n";
  json += "  \"median_relative_error\": " +
          FormatDouble(fit.median_relative_error, 6) + ",\n";
  json += "  \"required_median_relative_error\": 0.25,\n";
  json += "  \"top1_measured\": \"" + top_measured + "\",\n";
  json += "  \"top1_predicted\": \"" + top_predicted + "\",\n";
  json += "  \"top1_exact_agreement\": " +
          std::string(top_measured == top_predicted ? "true" : "false") +
          ",\n";
  json += "  \"model_pick_measured_regret\": " + FormatDouble(regret, 6) +
          ",\n";
  json += "  \"required_regret\": 0.1,\n";
  json += "  \"advisor_min_expected_ms_strategy\": \"" + advisor_top_ms +
          "\",\n";
  json += "  \"per_strategy\": [\n";
  size_t i = 0;
  for (const auto& [name, t] : by_strategy) {
    json += "    {\"strategy\": \"" + name +
            "\", \"samples\": " + std::to_string(t.samples) +
            ", \"measured_ms\": " + FormatDouble(t.measured_ms, 6) +
            ", \"predicted_ms\": " + FormatDouble(t.predicted_ms, 6) + "}";
    json += ++i < by_strategy.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  const char* path = "BENCH_calibration.json";
  std::ofstream out(path);
  out << json;
  SNAKES_CHECK(out.good()) << "failed to write " << path;
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace snakes

int main() {
  snakes::Run();
  return 0;
}
