// Ablation: clustering x buffer caching. The paper's related work attacks
// OLAP I/O with caches (WATCHMAN; Deshpande et al.'s chunk caches); this
// bench shows the two are complementary: a workload-aware snaked layout
// concentrates each query class's pages, so the same LRU buffer pool serves
// far more accesses from memory than under a row-major layout.
//
// TPC-D LineItem, Section-6.2 workload 7, 500 replayed queries per cell.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "curves/path_order.h"
#include "curves/row_major.h"
#include "path/snaked_dp.h"
#include "storage/cache.h"
#include "storage/pager.h"
#include "tpcd/dbgen.h"
#include "tpcd/workloads.h"
#include "util/logging.h"
#include "util/text_table.h"

namespace snakes {
namespace {

void Run() {
  tpcd::Config config;
  std::fprintf(stderr, "generating warehouse...\n");
  const auto warehouse = tpcd::GenerateWarehouse(config).ValueOrDie();
  const QueryClassLattice lattice(*warehouse.schema);
  const Workload mu = tpcd::SectionSixWorkload(lattice, 27).ValueOrDie();
  const auto dp = FindOptimalSnakedLatticePath(mu).ValueOrDie();

  struct Layout {
    std::string name;
    PackedLayout layout;
  };
  std::vector<Layout> layouts;
  layouts.push_back(
      {"snaked optimal",
       PackedLayout::Pack(
           MakePathOrder(warehouse.schema, dp.path, true).ValueOrDie(),
           warehouse.facts)
           .ValueOrDie()});
  layouts.push_back(
      {"row-major(parts,supplier,time)",
       PackedLayout::Pack(
           RowMajorOrder::Make(warehouse.schema, {0, 1, 2}).ValueOrDie(),
           warehouse.facts)
           .ValueOrDie()});
  layouts.push_back(
      {"row-major(time,supplier,parts)",
       PackedLayout::Pack(
           RowMajorOrder::Make(warehouse.schema, {2, 1, 0}).ValueOrDie(),
           warehouse.facts)
           .ValueOrDie()});

  const uint64_t total_pages = layouts.front().layout.num_pages();
  std::printf(
      "Ablation: disk reads per query (LRU hit rate) by clustering and\n"
      "cache size — workload 27, %llu pages total, 500 queries per cell\n\n",
      static_cast<unsigned long long>(total_pages));
  TextTable table({"layout", "cache 5%", "cache 20%", "cache 50%"});
  for (const Layout& l : layouts) {
    std::vector<std::string> row{l.name};
    for (const double fraction : {0.05, 0.20, 0.50}) {
      LruPageCache cache(
          static_cast<uint64_t>(fraction * static_cast<double>(total_pages)));
      Rng rng(777);
      const CachedRunStats stats =
          ReplayWorkload(l.layout, mu, 500, &cache, &rng);
      row.push_back(
          FormatDouble(static_cast<double>(stats.disk_reads) /
                           static_cast<double>(stats.queries),
                       1) +
          " (" + FormatPercent(stats.HitRate(), 1) + ")");
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Hit rates barely move with the layout (no temporal locality to\n"
      "exploit), but the snaked layout's smaller footprint means fewer\n"
      "disk reads per query at every cache size — clustering helps even\n"
      "with a generous buffer pool in front of the disk.\n");
}

}  // namespace
}  // namespace snakes

int main() {
  snakes::Run();
  return 0;
}
