// Zone-map pruning power of the micro-partition backend on the TPC-D
// warehouse: how much of the partition directory a query skips, as a
// function of how coarse the query class is, under the recommended
// (snaked optimal path) clustering.
//
// Setup: the Table-4 LineItem warehouse packed twice from the same fact
// table — once as PackedLayout, once as MicroPartitionStore — under the
// snaked optimal lattice path for the uniform workload. The bench first
// proves the backends interchangeable (ClassIoStats equal on every class,
// QueryAnswers bit-identical on a per-class query sample), then measures
// per-class pruned fractions with PruneBox.
//
// Pruning power runs opposite to clustering depth: the top class (whole
// grid) prunes nothing, while any class restricted in at least one
// dimension selects a box whose zone overlap shrinks with the box. The
// guard SNAKES_CHECKs that restricted classes — every class except the
// grid-spanning top — skip >= 50% of partitions on average, and writes
// BENCH_micropartition.json.
//
//   $ ./micro_micropartition

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "curves/path_order.h"
#include "lattice/grid_query.h"
#include "lattice/workload.h"
#include "path/snaked_dp.h"
#include "storage/backend.h"
#include "storage/executor.h"
#include "storage/query_engine.h"
#include "tpcd/dbgen.h"
#include "util/logging.h"
#include "util/text_table.h"

namespace snakes {
namespace {

struct ClassPruning {
  QueryClass cls;
  uint64_t num_queries = 0;
  uint64_t sampled = 0;
  uint64_t partitions_scanned = 0;
  uint64_t partitions_pruned = 0;

  double PrunedFraction() const {
    const uint64_t total = partitions_scanned + partitions_pruned;
    return total == 0 ? 0.0
                      : static_cast<double>(partitions_pruned) /
                            static_cast<double>(total);
  }
};

void Run() {
  tpcd::Config config;
  std::fprintf(stderr, "generating ~%llu lineitems...\n",
               static_cast<unsigned long long>(4 * config.num_orders));
  const auto warehouse = tpcd::GenerateWarehouse(config).ValueOrDie();
  const StarSchema& schema = *warehouse.schema;
  const QueryClassLattice lattice(schema);

  const Workload uniform = Workload::Uniform(lattice);
  const auto dp = FindOptimalSnakedLatticePath(uniform).ValueOrDie();
  auto order =
      MakePathOrder(warehouse.schema, dp.path, /*snaked=*/true).ValueOrDie();
  const std::shared_ptr<const Linearization> lin = std::move(order);
  std::fprintf(stderr, "packing under %s (both backends)...\n",
               lin->name().c_str());

  const StorageConfig storage;  // the paper's 125-byte records on 8 KB pages
  const auto packed =
      MakeStorageBackend(StorageBackendKind::kPacked, lin, warehouse.facts,
                         storage)
          .ValueOrDie();
  const auto micro =
      MakeStorageBackend(StorageBackendKind::kMicroPartition, lin,
                         warehouse.facts, storage)
          .ValueOrDie();
  SNAKES_CHECK(packed->num_pages() == micro->num_pages());
  SNAKES_CHECK(micro->num_partitions() > 0);
  std::fprintf(stderr, "%llu pages in %llu micro-partitions\n",
               static_cast<unsigned long long>(micro->num_pages()),
               static_cast<unsigned long long>(micro->num_partitions()));

  const IoSimulator packed_sim(*packed);
  const IoSimulator micro_sim(*micro);
  const QueryEngine packed_engine(*packed);
  const QueryEngine micro_engine(*micro);

  // Interchangeability first: identical per-class I/O statistics (covers
  // every query of every class) and bit-identical QueryAnswers on a strided
  // per-class sample through the full query engine.
  uint64_t answers_compared = 0;
  std::vector<ClassPruning> per_class;
  for (uint64_t i = 0; i < lattice.size(); ++i) {
    ClassPruning pruning;
    pruning.cls = lattice.ClassAt(i);
    pruning.num_queries = NumQueriesInClass(schema, pruning.cls);

    const ClassIoStats a = packed_sim.MeasureClass(pruning.cls);
    const ClassIoStats b = micro_sim.MeasureClass(pruning.cls);
    SNAKES_CHECK(a.num_queries == b.num_queries &&
                 a.num_nonempty == b.num_nonempty &&
                 a.total_pages == b.total_pages &&
                 a.total_seeks == b.total_seeks &&
                 a.total_normalized == b.total_normalized)
        << "backend divergence in class " << pruning.cls.ToString();

    // Stride so the sample spans the class instead of clustering at the
    // rank-space origin.
    const uint64_t sample = pruning.num_queries < 256 ? pruning.num_queries
                                                      : uint64_t{256};
    const uint64_t stride = pruning.num_queries / sample;
    for (uint64_t s = 0; s < sample; ++s) {
      const GridQuery query = QueryAt(schema, pruning.cls, s * stride);
      const QueryAnswer pa = packed_engine.Execute(query);
      const QueryAnswer ma = micro_engine.Execute(query);
      SNAKES_CHECK(pa.count == ma.count && pa.sum == ma.sum &&
                   pa.io.records == ma.io.records &&
                   pa.io.pages == ma.io.pages && pa.io.seeks == ma.io.seeks &&
                   pa.io.min_pages == ma.io.min_pages)
          << "answer divergence on " << query.ToString();
      ++answers_compared;

      const PruneStats stats = micro->PruneBox(BoxOf(schema, query));
      pruning.partitions_scanned += stats.scanned;
      pruning.partitions_pruned += stats.pruned;
    }
    pruning.sampled = sample;
    per_class.push_back(pruning);
  }
  std::fprintf(stderr, "%llu answers bit-identical across backends\n",
               static_cast<unsigned long long>(answers_compared));

  // Aggregate pruning power over the restricted classes: everything below
  // the grid-spanning top, where zone maps have a box edge to cut against.
  const QueryClass top = lattice.Top();
  uint64_t restricted_scanned = 0, restricted_pruned = 0;
  TextTable table(
      {"class", "queries", "sampled", "scanned", "pruned", "pruned%"});
  for (const ClassPruning& pruning : per_class) {
    const bool restricted = pruning.cls != top;
    if (restricted) {
      restricted_scanned += pruning.partitions_scanned;
      restricted_pruned += pruning.partitions_pruned;
    }
    table.AddRow({pruning.cls.ToString() + (restricted ? "" : " (top)"),
                  std::to_string(pruning.num_queries),
                  std::to_string(pruning.sampled),
                  std::to_string(pruning.partitions_scanned),
                  std::to_string(pruning.partitions_pruned),
                  FormatDouble(100.0 * pruning.PrunedFraction(), 1)});
  }
  const double restricted_fraction =
      static_cast<double>(restricted_pruned) /
      static_cast<double>(restricted_scanned + restricted_pruned);
  std::printf("%s\n", table.Render().c_str());
  std::printf("restricted classes: %.1f%% of partitions pruned "
              "(%llu scanned, %llu pruned)\n",
              100.0 * restricted_fraction,
              static_cast<unsigned long long>(restricted_scanned),
              static_cast<unsigned long long>(restricted_pruned));

  SNAKES_CHECK(restricted_fraction >= 0.5)
      << "zone maps prune only " << 100.0 * restricted_fraction
      << "% of partitions on restricted classes (need >= 50%)";

  std::string json = "{\n  \"bench\": \"micropartition\",\n";
  json += "  \"layout\": \"" + lin->name() + "\",\n";
  json += "  \"cells\": " + std::to_string(lin->num_cells()) + ",\n";
  json += "  \"records\": " +
          std::to_string(warehouse.facts->total_records()) + ",\n";
  json += "  \"pages\": " + std::to_string(micro->num_pages()) + ",\n";
  json += "  \"partitions\": " + std::to_string(micro->num_partitions()) +
          ",\n";
  json += "  \"micro_partition_pages\": " +
          std::to_string(storage.micro_partition_pages) + ",\n";
  json += "  \"answers_compared\": " + std::to_string(answers_compared) +
          ",\n";
  json += "  \"bit_identical\": true,\n";
  json += "  \"restricted_pruned_fraction\": " +
          FormatDouble(restricted_fraction, 4) + ",\n";
  json += "  \"required_fraction\": 0.5,\n";
  json += "  \"classes\": [\n";
  for (size_t i = 0; i < per_class.size(); ++i) {
    const ClassPruning& pruning = per_class[i];
    json += "    {\"class\": \"" + pruning.cls.ToString() +
            "\", \"queries\": " + std::to_string(pruning.num_queries) +
            ", \"sampled\": " + std::to_string(pruning.sampled) +
            ", \"scanned\": " + std::to_string(pruning.partitions_scanned) +
            ", \"pruned\": " + std::to_string(pruning.partitions_pruned) +
            ", \"pruned_fraction\": " +
            FormatDouble(pruning.PrunedFraction(), 4) + "}";
    json += i + 1 < per_class.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  const char* path = "BENCH_micropartition.json";
  std::ofstream out(path);
  out << json;
  SNAKES_CHECK(out.good()) << "failed to write " << path;
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace snakes

int main() {
  snakes::Run();
  return 0;
}
