// Rank-run decomposition payoff on the TPC-D warehouse: the interval-based
// simulator must do an order of magnitude less work than the per-cell walk
// on coarse query classes over a snaked-path layout.
//
// Setup: the Table-4 LineItem warehouse (200 x 10 x 84 grid), packed under
// the snaked optimal lattice path for the uniform workload. For every query
// class we count the operations each evaluation strategy performs —
//
//   * cell walk:  every cell of every query box (the seed's inner loop);
//   * rank runs:  one MeasureRange per emitted run.
//
// — and time MeasureClassCellWalk against the run-based MeasureClass. A
// query at leaf granularity in the layout's innermost dimension selects
// rank-isolated cells (its fragment count ~equals its box size), so no
// interval representation can compress it; the payoff is on the *coarse*
// classes, the ones aggregated past level 0 in the path's first-step
// dimension. The guard SNAKES_CHECKs that those see >= 10x fewer operations
// in aggregate, and writes BENCH_run_decomposition.json.
//
//   $ ./micro_run_decomposition

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "curves/path_order.h"
#include "curves/rank_run.h"
#include "lattice/grid_query.h"
#include "lattice/workload.h"
#include "path/snaked_dp.h"
#include "storage/executor.h"
#include "storage/pager.h"
#include "tpcd/dbgen.h"
#include "util/logging.h"
#include "util/text_table.h"

namespace snakes {
namespace {

using Clock = std::chrono::steady_clock;

struct ClassOps {
  QueryClass cls;
  uint64_t num_queries = 0;
  uint64_t cell_ops = 0;  // sum over queries of box cells
  uint64_t run_ops = 0;   // sum over queries of emitted runs
  double walk_ms = 0.0;
  double runs_ms = 0.0;
};

void Run() {
  tpcd::Config config;
  std::fprintf(stderr, "generating ~%llu lineitems...\n",
               static_cast<unsigned long long>(4 * config.num_orders));
  const auto warehouse = tpcd::GenerateWarehouse(config).ValueOrDie();
  const StarSchema& schema = *warehouse.schema;
  const QueryClassLattice lattice(schema);

  const Workload uniform = Workload::Uniform(lattice);
  const auto dp = FindOptimalSnakedLatticePath(uniform).ValueOrDie();
  auto order =
      MakePathOrder(warehouse.schema, dp.path, /*snaked=*/true).ValueOrDie();
  std::fprintf(stderr, "packing under %s...\n", order->name().c_str());
  const auto layout =
      PackedLayout::Pack(std::move(order), warehouse.facts).ValueOrDie();
  const IoSimulator sim(layout);
  const Linearization& lin = layout.linearization();

  std::vector<ClassOps> per_class;
  std::vector<RankRun> runs;
  for (uint64_t i = 0; i < lattice.size(); ++i) {
    ClassOps ops;
    ops.cls = lattice.ClassAt(i);
    ops.num_queries = NumQueriesInClass(schema, ops.cls);
    for (uint64_t q = 0; q < ops.num_queries; ++q) {
      const CellBox box = BoxOf(schema, QueryAt(schema, ops.cls, q));
      runs.clear();
      lin.AppendRuns(box, &runs);
      ops.cell_ops += box.NumCells();
      ops.run_ops += runs.size();
    }
    auto start = Clock::now();
    const ClassIoStats walk = sim.MeasureClassCellWalk(ops.cls);
    ops.walk_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    start = Clock::now();
    const ClassIoStats fast = sim.MeasureClass(ops.cls);
    ops.runs_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    // Sanity: both paths agree on every statistic they report.
    SNAKES_CHECK(walk.total_pages == fast.total_pages &&
                 walk.total_seeks == fast.total_seeks &&
                 walk.num_nonempty == fast.num_nonempty &&
                 walk.total_normalized == fast.total_normalized)
        << "run/walk divergence in class " << ops.cls.ToString();
    per_class.push_back(ops);
  }

  // Aggregate over the coarse classes: aggregated past the leaves in the
  // path's innermost dimension, so query boxes span whole inner blocks and
  // runs can actually merge.
  const int inner_dim = dp.path.steps().front();
  uint64_t coarse_cells = 0, coarse_runs = 0;
  double coarse_walk_ms = 0.0, coarse_runs_ms = 0.0;
  TextTable table({"class", "queries", "cell ops", "run ops", "ratio",
                   "walk ms", "runs ms"});
  for (const ClassOps& ops : per_class) {
    const bool coarse = ops.cls.level(inner_dim) >= 1;
    if (coarse) {
      coarse_cells += ops.cell_ops;
      coarse_runs += ops.run_ops;
      coarse_walk_ms += ops.walk_ms;
      coarse_runs_ms += ops.runs_ms;
    }
    const double ratio = ops.run_ops == 0
                             ? 0.0
                             : static_cast<double>(ops.cell_ops) /
                                   static_cast<double>(ops.run_ops);
    table.AddRow({ops.cls.ToString() + (coarse ? " *" : ""),
                  std::to_string(ops.num_queries),
                  std::to_string(ops.cell_ops), std::to_string(ops.run_ops),
                  FormatDouble(ratio, 1), FormatDouble(ops.walk_ms, 2),
                  FormatDouble(ops.runs_ms, 2)});
  }
  const double coarse_ratio = static_cast<double>(coarse_cells) /
                              static_cast<double>(coarse_runs);
  const double speedup =
      coarse_runs_ms > 0.0 ? coarse_walk_ms / coarse_runs_ms : 0.0;
  std::printf("%s\n", table.Render().c_str());
  std::printf("coarse classes (*): %llu cell ops vs %llu run ops (%.1fx), "
              "%.1f ms walk vs %.1f ms runs (%.1fx)\n",
              static_cast<unsigned long long>(coarse_cells),
              static_cast<unsigned long long>(coarse_runs), coarse_ratio,
              coarse_walk_ms, coarse_runs_ms, speedup);

  SNAKES_CHECK(coarse_ratio >= 10.0)
      << "run decomposition only saves " << coarse_ratio
      << "x simulator operations on coarse classes (need >= 10x)";

  std::string json = "{\n  \"bench\": \"run_decomposition\",\n";
  json += "  \"layout\": \"" + lin.name() + "\",\n";
  json += "  \"cells\": " + std::to_string(lin.num_cells()) + ",\n";
  json += "  \"records\": " +
          std::to_string(warehouse.facts->total_records()) + ",\n";
  json += "  \"coarse_cell_ops\": " + std::to_string(coarse_cells) + ",\n";
  json += "  \"coarse_run_ops\": " + std::to_string(coarse_runs) + ",\n";
  json += "  \"coarse_ops_ratio\": " + FormatDouble(coarse_ratio, 2) + ",\n";
  json += "  \"coarse_walk_ms\": " + FormatDouble(coarse_walk_ms, 3) + ",\n";
  json += "  \"coarse_runs_ms\": " + FormatDouble(coarse_runs_ms, 3) + ",\n";
  json += "  \"coarse_speedup\": " + FormatDouble(speedup, 2) + ",\n";
  json += "  \"required_ratio\": 10.0,\n";
  json += "  \"classes\": [\n";
  for (size_t i = 0; i < per_class.size(); ++i) {
    const ClassOps& ops = per_class[i];
    json += "    {\"class\": \"" + ops.cls.ToString() + "\", \"queries\": " +
            std::to_string(ops.num_queries) + ", \"cell_ops\": " +
            std::to_string(ops.cell_ops) + ", \"run_ops\": " +
            std::to_string(ops.run_ops) + ", \"walk_ms\": " +
            FormatDouble(ops.walk_ms, 3) + ", \"runs_ms\": " +
            FormatDouble(ops.runs_ms, 3) + "}";
    json += i + 1 < per_class.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  const char* path = "BENCH_run_decomposition.json";
  std::ofstream out(path);
  out << json;
  SNAKES_CHECK(out.good()) << "failed to write " << path;
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace snakes

int main() {
  snakes::Run();
  return 0;
}
