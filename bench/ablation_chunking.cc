// Ablation for the Section-7 remark on Deshpande et al. (SIGMOD 1998): the
// chunked file organization always lays chunks out row-major; the paper
// notes its lattice-path machinery "can be applied in a straightforward
// fashion" to pick a better chunk order. We chunk the TPC-D LineItem grid at
// (part, supplier, year) boundaries and compare, across the 27 Section-6.2
// workloads, the fixed row-major chunk order of [2] against chunks ordered
// by the optimal snaked lattice path on the coarsened chunk lattice.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "curves/path_order.h"
#include "curves/row_major.h"
#include "path/snaked_dp.h"
#include "storage/chunks.h"
#include "storage/executor.h"
#include "storage/pager.h"
#include "tpcd/dbgen.h"
#include "tpcd/workloads.h"
#include "util/logging.h"
#include "util/text_table.h"

namespace snakes {
namespace {

// Projects a full-lattice workload onto the chunk lattice: class c maps to
// max(c - chunk_class, 0) per dimension (queries finer than a chunk behave
// like chunk-level queries for the chunk ordering decision).
Workload ProjectWorkload(const Workload& mu, const QueryClass& chunk_class,
                         const QueryClassLattice& chunk_lattice) {
  std::vector<std::pair<QueryClass, double>> masses;
  const QueryClassLattice& lat = mu.lattice();
  for (uint64_t i = 0; i < lat.size(); ++i) {
    const double p = mu.probability_at(i);
    if (p == 0.0) continue;
    const QueryClass c = lat.ClassAt(i);
    QueryClass projected(c.num_dims());
    for (int d = 0; d < c.num_dims(); ++d) {
      projected.set_level(d, std::max(0, c.level(d) - chunk_class.level(d)));
    }
    masses.emplace_back(projected, p);
  }
  auto workload = Workload::FromMasses(chunk_lattice, masses, true);
  SNAKES_CHECK(workload.ok());
  return std::move(workload).value();
}

void Run() {
  tpcd::Config config;
  std::fprintf(stderr, "generating warehouse...\n");
  const auto warehouse = tpcd::GenerateWarehouse(config).ValueOrDie();
  const QueryClassLattice lattice(*warehouse.schema);

  // Chunk at (part, supplier, year): bricks of 1 x 1 x 12 cells — the
  // fine-grained chunks [2] uses as caching units. The chunk grid is
  // 200 x 10 x 7 and chunk ordering decides almost all of the seek cost.
  const QueryClass chunk_class{0, 0, 1};
  const auto grid =
      ChunkGridSchema(*warehouse.schema, chunk_class).ValueOrDie();
  const QueryClassLattice chunk_lattice(*grid);
  std::fprintf(stderr, "chunk grid %llux%llux%llu\n",
               static_cast<unsigned long long>(grid->extent(0)),
               static_cast<unsigned long long>(grid->extent(1)),
               static_cast<unsigned long long>(grid->extent(2)));

  auto measure = [&](std::shared_ptr<const Linearization> chunk_order,
                     const Workload& mu) {
    auto chunked =
        ChunkedOrder::Make(warehouse.schema, chunk_class, chunk_order);
    SNAKES_CHECK(chunked.ok());
    auto layout = PackedLayout::Pack(std::move(chunked).value(),
                                     warehouse.facts);
    SNAKES_CHECK(layout.ok());
    return IoSimulator::Expect(mu, IoSimulator(*layout).MeasureAllClasses());
  };

  std::printf(
      "Ablation: chunk ordering (chunks = part x supplier x year bricks)\n"
      "seeks per query, expectation over each Section-6.2 workload\n\n");
  TextTable table({"Workload", "snaked-path chunks", "[2] row-major chunks",
                   "best row-major", "worst row-major", "vs [2]"});
  double geo_sum = 0.0;
  for (int id = 1; id <= 27; ++id) {
    const Workload mu = tpcd::SectionSixWorkload(lattice, id).ValueOrDie();
    const Workload chunk_mu = ProjectWorkload(mu, chunk_class, chunk_lattice);
    const auto dp = FindOptimalSnakedLatticePath(chunk_mu).ValueOrDie();
    const WorkloadIoStats snaked = measure(
        std::shared_ptr<const Linearization>(
            PathOrder::Make(grid, dp.path, true).ValueOrDie()),
        mu);
    // [2] fixes the canonical row-major order (schema dimension order);
    // the best/worst of all 6 orders frame it.
    const WorkloadIoStats canonical = measure(
        std::shared_ptr<const Linearization>(
            RowMajorOrder::Make(grid, {0, 1, 2}).ValueOrDie()),
        mu);
    double best = 1e300, worst = 0.0;
    for (auto& rm : AllRowMajorOrders(grid)) {
      const WorkloadIoStats io =
          measure(std::shared_ptr<const Linearization>(std::move(rm)), mu);
      best = std::min(best, io.expected_seeks);
      worst = std::max(worst, io.expected_seeks);
    }
    const double improvement = canonical.expected_seeks / snaked.expected_seeks;
    geo_sum += std::log(improvement);
    table.AddRow({std::to_string(id), FormatDouble(snaked.expected_seeks, 2),
                  FormatDouble(canonical.expected_seeks, 2),
                  FormatDouble(best, 2), FormatDouble(worst, 2),
                  FormatDouble(improvement, 2) + "x"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "geometric-mean seek improvement of snaked-path chunk ordering over\n"
      "[2]'s fixed row-major chunk ordering: %.2fx — the paper's Section-7\n"
      "claim quantified. The snaked order also never loses to the best\n"
      "workload-specific row-major by more than a whisker.\n",
      std::exp(geo_sum / 27.0));
}

}  // namespace
}  // namespace snakes

int main() {
  snakes::Run();
  return 0;
}
