#ifndef SNAKES_BENCH_BENCH_COMMON_H_
#define SNAKES_BENCH_BENCH_COMMON_H_

// Shared setup for the table-reproduction binaries: the Section-2 toy
// schema, its named strategies (P1, P2, Hilbert in the paper's Figure-2b
// orientation) and the three toy workloads of Table 2.

#include <memory>
#include <string>
#include <vector>

#include "curves/hilbert.h"
#include "curves/path_order.h"
#include "hierarchy/star_schema.h"
#include "lattice/workload.h"
#include "path/lattice_path.h"
#include "util/logging.h"

namespace snakes {
namespace bench {

/// The toy 2-D schema with 2 binary levels per dimension and fanout
/// `fanout` at each level (fanout 2 = Figure 1's 4x4 grid).
inline std::shared_ptr<const StarSchema> ToySchema(uint64_t fanout = 2) {
  auto schema = StarSchema::Symmetric(2, 2, fanout);
  SNAKES_CHECK(schema.ok());
  return std::make_shared<StarSchema>(std::move(schema).value());
}

/// P1 = (0,0)-(0,1)-(0,2)-(1,2)-(2,2), the row-major path of Figure 1.
inline LatticePath P1(const QueryClassLattice& lattice) {
  auto path = LatticePath::FromSteps(lattice, {1, 1, 0, 0});
  SNAKES_CHECK(path.ok());
  return std::move(path).value();
}

/// P2 = (0,0)-(0,1)-(1,1)-(1,2)-(2,2), the quadrant path of Figure 2(a).
inline LatticePath P2(const QueryClassLattice& lattice) {
  auto path = LatticePath::FromSteps(lattice, {1, 0, 1, 0});
  SNAKES_CHECK(path.ok());
  return std::move(path).value();
}

/// Hilbert in the orientation the paper's Table 1 uses.
inline std::unique_ptr<HilbertCurve> PaperHilbert(
    std::shared_ptr<const StarSchema> schema) {
  auto h = HilbertCurve::Make(std::move(schema), /*swap_first_two=*/true);
  SNAKES_CHECK(h.ok());
  return std::move(h).value();
}

/// The three workloads of Section 2 / Table 2.
inline std::vector<Workload> ToyWorkloads(const QueryClassLattice& lattice) {
  std::vector<Workload> workloads;
  workloads.push_back(Workload::Uniform(lattice));
  auto w2 = Workload::UniformOver(
      lattice, {QueryClass{0, 0}, QueryClass{2, 2}, QueryClass{1, 0},
                QueryClass{2, 0}, QueryClass{2, 1}, QueryClass{1, 2}});
  SNAKES_CHECK(w2.ok());
  workloads.push_back(std::move(w2).value());
  auto w3 = Workload::UniformOver(lattice,
                                  {QueryClass{0, 0}, QueryClass{0, 1},
                                   QueryClass{0, 2}, QueryClass{1, 2}});
  SNAKES_CHECK(w3.ok());
  workloads.push_back(std::move(w3).value());
  return workloads;
}

}  // namespace bench
}  // namespace snakes

#endif  // SNAKES_BENCH_BENCH_COMMON_H_
