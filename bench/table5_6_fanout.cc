// Reproduces Tables 5 and 6: normalized blocks read under workload 7 as the
// parts fanout (parts per manufacturer) grows through 4, 10, 40 — raw
// (Table 5) and relative to the snaked optimal lattice path (Table 6). The
// paper's observation: the snaked optimal path's advantage over row-major
// orderings grows with the fanout.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "curves/path_order.h"
#include "curves/row_major.h"
#include "path/dpkd.h"
#include "storage/executor.h"
#include "storage/pager.h"
#include "tpcd/dbgen.h"
#include "tpcd/workloads.h"
#include "util/logging.h"
#include "util/text_table.h"

namespace snakes {
namespace {

struct Row {
  uint64_t fanout;
  double opt, snaked, best_rm, worst_rm;
};

WorkloadIoStats Measure(std::shared_ptr<const Linearization> lin,
                        std::shared_ptr<const FactTable> facts,
                        const Workload& mu) {
  auto layout = PackedLayout::Pack(std::move(lin), std::move(facts));
  SNAKES_CHECK(layout.ok());
  return IoSimulator::Expect(mu, IoSimulator(*layout).MeasureAllClasses());
}

void Run() {
  std::vector<Row> rows;
  for (uint64_t fanout : {4u, 10u, 40u}) {
    tpcd::Config config;
    config.parts_per_mfgr = fanout;
    std::fprintf(stderr, "fanout %llu: generating and measuring...\n",
                 static_cast<unsigned long long>(fanout));
    const auto warehouse = tpcd::GenerateWarehouse(config).ValueOrDie();
    const QueryClassLattice lattice(*warehouse.schema);
    const Workload mu = tpcd::SectionSixWorkload(lattice, 7).ValueOrDie();
    const auto dp = FindOptimalLatticePath(mu).ValueOrDie();

    Row row{fanout, 0, 0, 1e300, 0};
    row.opt =
        Measure(MakePathOrder(warehouse.schema, dp.path, false).ValueOrDie(),
                warehouse.facts, mu)
            .expected_normalized_blocks;
    row.snaked =
        Measure(MakePathOrder(warehouse.schema, dp.path, true).ValueOrDie(),
                warehouse.facts, mu)
            .expected_normalized_blocks;
    for (auto& rm : AllRowMajorOrders(warehouse.schema)) {
      const double blocks = Measure(std::move(rm), warehouse.facts, mu)
                                .expected_normalized_blocks;
      row.best_rm = std::min(row.best_rm, blocks);
      row.worst_rm = std::max(row.worst_rm, blocks);
    }
    rows.push_back(row);
  }

  std::printf(
      "Table 5: Normalized blocks read for workload 7 vs parts fanout\n\n");
  TextTable t5({"Fanout", "opt path", "snaked opt", "best row major",
                "worst row major"});
  for (const Row& r : rows) {
    t5.AddRow({std::to_string(r.fanout), FormatDouble(r.opt, 2),
               FormatDouble(r.snaked, 2), FormatDouble(r.best_rm, 2),
               FormatDouble(r.worst_rm, 2)});
  }
  std::printf("%s\n", t5.Render().c_str());
  std::printf(
      "paper reference: 4: 1.45/1.44/1.57/3.84; 10: 1.42/1.39/1.72/4.39; "
      "40: 1.24/1.25/1.91/5.25\n\n");

  std::printf(
      "Table 6: Normalized blocks read relative to the snaked optimal "
      "path\n\n");
  TextTable t6({"Fanout", "opt path", "snaked opt", "best row major",
                "worst row major"});
  for (const Row& r : rows) {
    t6.AddRow({std::to_string(r.fanout), FormatDouble(r.opt / r.snaked, 2),
               "1.00", FormatDouble(r.best_rm / r.snaked, 2),
               FormatDouble(r.worst_rm / r.snaked, 2)});
  }
  std::printf("%s\n", t6.Render().c_str());
  std::printf(
      "paper reference: 4: 1.01/1.00/1.09/2.66; 10: 1.02/1.00/1.24/3.15; "
      "40: 0.99/1.00/1.53/4.22\n");
}

}  // namespace
}  // namespace snakes

int main() {
  snakes::Run();
  return 0;
}
