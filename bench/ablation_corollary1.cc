// Ablation for Corollary 1: how far is the paper's recipe — snake the
// UNSNAKED optimum — from the true optimal snaked lattice path (computed by
// this library's snaked-cost DP, src/path/snaked_dp.h)?
//
// The corollary proves the ratio < 2 and the paper conjectures it is "much
// less than 2" in practice. We measure it over random workloads on several
// lattice shapes and over the 27 Section-6.2 TPC-D workloads.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "cost/workload_cost.h"
#include "lattice/workload.h"
#include "path/dpkd.h"
#include "path/snaked_dp.h"
#include "tpcd/schema.h"
#include "tpcd/workloads.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/text_table.h"

namespace snakes {
namespace {

struct GapStats {
  double max_ratio = 1.0;
  double sum_ratio = 0.0;
  int count = 0;
  int path_differs = 0;

  void Add(double ratio, bool differs) {
    max_ratio = std::max(max_ratio, ratio);
    sum_ratio += ratio;
    ++count;
    path_differs += differs;
  }
};

GapStats MeasureRandom(const QueryClassLattice& lat, int trials,
                       uint64_t seed) {
  Rng rng(seed);
  GapStats stats;
  for (int t = 0; t < trials; ++t) {
    const Workload mu = Workload::Random(lat, &rng);
    const auto unsnaked = FindOptimalLatticePath(mu).ValueOrDie();
    const auto snaked = FindOptimalSnakedLatticePath(mu).ValueOrDie();
    const double recipe = ExpectedSnakedPathCost(mu, unsnaked.path);
    stats.Add(recipe / snaked.cost, unsnaked.path != snaked.path);
  }
  return stats;
}

void Run() {
  std::printf(
      "Ablation (Corollary 1): snaked(optimal path) vs optimal snaked "
      "path\n\n");
  TextTable table({"lattice", "workloads", "max ratio", "avg ratio",
                   "paths differ"});

  struct Shape {
    const char* name;
    std::vector<std::vector<double>> fanouts;
  };
  const std::vector<Shape> shapes = {
      {"binary 2x2", {{2, 2}, {2, 2}}},
      {"binary 3x3", {{2, 2, 2}, {2, 2, 2}}},
      {"binary 4x4", {{2, 2, 2, 2}, {2, 2, 2, 2}}},
      {"mixed (3,4)x(2,5)", {{3, 4}, {2, 5}}},
      {"3-dim (2,3)x(4)x(2,2)", {{2, 3}, {4}, {2, 2}}},
  };
  uint64_t seed = 3000;
  for (const Shape& shape : shapes) {
    const auto lat = QueryClassLattice::FromFanouts(shape.fanouts).value();
    const GapStats stats = MeasureRandom(lat, 2000, seed++);
    table.AddRow({shape.name, "2000 random", FormatDouble(stats.max_ratio, 4),
                  FormatDouble(stats.sum_ratio / stats.count, 4),
                  std::to_string(stats.path_differs) + "/" +
                      std::to_string(stats.count)});
  }

  // The 27 TPC-D workloads on the Section-6.1 schema.
  tpcd::Config config;
  const auto schema = tpcd::BuildSharedSchema(config).ValueOrDie();
  const QueryClassLattice lat(*schema);
  GapStats tpcd_stats;
  for (int id = 1; id <= 27; ++id) {
    const Workload mu = tpcd::SectionSixWorkload(lat, id).ValueOrDie();
    const auto unsnaked = FindOptimalLatticePath(mu).ValueOrDie();
    const auto snaked = FindOptimalSnakedLatticePath(mu).ValueOrDie();
    const double recipe = ExpectedSnakedPathCost(mu, unsnaked.path);
    tpcd_stats.Add(recipe / snaked.cost, unsnaked.path != snaked.path);
  }
  table.AddRow({"TPC-D 200x10x84", "27 (Section 6.2)",
                FormatDouble(tpcd_stats.max_ratio, 4),
                FormatDouble(tpcd_stats.sum_ratio / tpcd_stats.count, 4),
                std::to_string(tpcd_stats.path_differs) + "/27"});

  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "The theoretical bound is 2; observed gaps stay within a few percent,\n"
      "confirming the paper's conjecture that snaking the unsnaked optimum\n"
      "is near-optimal — while the snaked-cost DP closes even that gap at\n"
      "identical asymptotic cost.\n");
}

}  // namespace
}  // namespace snakes

int main() {
  snakes::Run();
  return 0;
}
