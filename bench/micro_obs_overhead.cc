// Overhead guard for the observability null object: instrumented code with
// no backends attached must be indistinguishable from uninstrumented code.
//
// Two measurements on the 1M-cell Table-3 schema (fanout 32):
//
//   1. Wall time of a serial Evaluate with the ObsSink disabled vs enabled
//      (a live registry + tracer). Informational — the enabled run is
//      allowed to cost more; that is what the backends are for.
//   2. An *analytic bound* on what the disabled path can add over truly
//      uninstrumented code. On the disabled path every instrumentation
//      site reduces to one null-pointer test (hot loops accumulate into
//      locals and flush once), so the added cost is bounded by
//      (dynamic site executions) * (cost of one untaken null test). The
//      site count is derived from an enabled run — each recorded span is
//      a constructor + destructor + its AddArgs, each metric flush block
//      one test — and generously padded; the per-test cost is measured
//      with a tight loop over an opaque null ObsSink.
//
// The guard SNAKES_CHECKs the bound under 2% of the disabled Evaluate and
// writes BENCH_obs_overhead.json.
//
//   $ ./micro_obs_overhead

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "bench/bench_common.h"
#include "core/advisor.h"
#include "core/evaluation.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/text_table.h"

namespace snakes {
namespace {

using Clock = std::chrono::steady_clock;

double EvaluateWallMs(const ClusteringAdvisor& advisor,
                      const EvaluationPlan& plan, int reps) {
  double best_ms = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    const auto rec = advisor.Evaluate(plan);
    SNAKES_CHECK(rec.ok()) << rec.status().ToString();
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    if (rep == 0 || ms < best_ms) best_ms = ms;
  }
  return best_ms;
}

/// Cost of one untaken `metrics != nullptr` test, measured over a sink the
/// optimizer cannot see through.
double NullBranchNs() {
  static MetricsRegistry* volatile opaque_metrics = nullptr;
  static Tracer* volatile opaque_tracer = nullptr;
  constexpr uint64_t kIters = 50'000'000;
  uint64_t taken = 0;
  const auto start = Clock::now();
  for (uint64_t i = 0; i < kIters; ++i) {
    if (opaque_metrics != nullptr) ++taken;
    if (opaque_tracer != nullptr) ++taken;
  }
  const double ns =
      std::chrono::duration<double, std::nano>(Clock::now() - start).count();
  SNAKES_CHECK(taken == 0);
  return ns / (2.0 * kIters);
}

void Run() {
  auto schema = bench::ToySchema(32);
  const ClusteringAdvisor advisor(schema);
  const Workload mu = Workload::Uniform(advisor.Lattice());
  std::fprintf(stderr, "planning on %llu cells...\n",
               static_cast<unsigned long long>(schema->num_cells()));

  EvaluationRequest request(mu);
  request.num_threads = 1;
  auto plan = advisor.Plan(request);
  SNAKES_CHECK(plan.ok()) << plan.status().ToString();

  // The serial 1M-cell Evaluate takes ~1s; best-of-2 each way.
  const int reps = 2;
  std::fprintf(stderr, "timing disabled sink...\n");
  const double disabled_ms = EvaluateWallMs(advisor, plan.value(), reps);

  MetricsRegistry metrics;
  Tracer tracer;
  plan.value().obs = ObsSink{&metrics, &tracer};
  std::fprintf(stderr, "timing enabled sink...\n");
  const double enabled_ms = EvaluateWallMs(advisor, plan.value(), reps);

  // Dynamic instrumentation-site executions on one Evaluate, counted from
  // the enabled runs (spans and histogram records are per-execution; 16
  // covers a span's ctor + dtor + AddArgs plus nearby flush blocks, several
  // times over) against the per-site disabled cost.
  const uint64_t histogram_records =
      metrics.GetHistogram("advisor.queue_wait_ns")->count() +
      metrics.GetHistogram("advisor.strategy_compute_ns")->count();
  const uint64_t sites =
      16 * (tracer.num_events() + histogram_records) / reps + 64;
  const double branch_ns = NullBranchNs();
  const double bound_pct =
      100.0 * (static_cast<double>(sites) * branch_ns) / (disabled_ms * 1e6);
  const double measured_pct =
      disabled_ms > 0.0 ? 100.0 * (enabled_ms / disabled_ms - 1.0) : 0.0;

  TextTable table({"metric", "value"});
  table.AddRow({"cells", std::to_string(schema->num_cells())});
  table.AddRow({"strategies",
                std::to_string(plan.value().strategies.size())});
  table.AddRow({"disabled ms", FormatDouble(disabled_ms, 2)});
  table.AddRow({"enabled ms", FormatDouble(enabled_ms, 2)});
  table.AddRow({"enabled delta", FormatDouble(measured_pct, 2) + "%"});
  table.AddRow({"null-branch ns", FormatDouble(branch_ns, 3)});
  table.AddRow({"site executions", std::to_string(sites)});
  table.AddRow({"disabled-path bound", FormatDouble(bound_pct, 4) + "%"});
  std::printf("%s\n", table.Render().c_str());

  // The tentpole's contract: with no backends attached, instrumentation
  // must stay far inside the noise floor.
  SNAKES_CHECK(bound_pct < 2.0)
      << "null-object path bound " << bound_pct << "% exceeds the 2% budget";

  std::string json = "{\n  \"bench\": \"obs_overhead\",\n";
  json += "  \"cells\": " + std::to_string(schema->num_cells()) + ",\n";
  json += "  \"strategies\": " +
          std::to_string(plan.value().strategies.size()) + ",\n";
  json += "  \"disabled_ms\": " + FormatDouble(disabled_ms, 3) + ",\n";
  json += "  \"enabled_ms\": " + FormatDouble(enabled_ms, 3) + ",\n";
  json += "  \"enabled_delta_pct\": " + FormatDouble(measured_pct, 3) + ",\n";
  json += "  \"null_branch_ns\": " + FormatDouble(branch_ns, 4) + ",\n";
  json += "  \"site_executions\": " + std::to_string(sites) + ",\n";
  json += "  \"disabled_bound_pct\": " + FormatDouble(bound_pct, 5) + ",\n";
  json += "  \"budget_pct\": 2.0\n}\n";
  const char* path = "BENCH_obs_overhead.json";
  std::ofstream out(path);
  out << json;
  SNAKES_CHECK(out.good()) << "failed to write " << path;
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace snakes

int main() {
  snakes::Run();
  return 0;
}
