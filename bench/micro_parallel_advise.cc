// Serial-vs-pooled Advise wall time on the Table-3 fanout-sweep schemas
// (the toy 2-D schema at fanouts 2, 4, 32 — up to a 1M-cell grid). Every
// candidate strategy is an independent scoring task, so the pooled run
// should approach min(strategies, threads)-way speedup on sufficient cores.
//
//   $ ./micro_parallel_advise [threads]   (default 4)
//
// Emits BENCH_parallel_advise.json (in the working directory) to seed the
// perf trajectory, and prints the same numbers as a table.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/advisor.h"
#include "core/evaluation.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "util/logging.h"
#include "util/text_table.h"
#include "util/thread_pool.h"

namespace snakes {
namespace {

double AdviseWallMs(const ClusteringAdvisor& advisor, const Workload& mu,
                    int num_threads, int reps) {
  double best_ms = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    EvaluationRequest request(mu);
    request.num_threads = num_threads;
    const auto start = std::chrono::steady_clock::now();
    const auto rec = advisor.Advise(request);
    const auto stop = std::chrono::steady_clock::now();
    SNAKES_CHECK(rec.ok()) << rec.status().ToString();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (rep == 0 || ms < best_ms) best_ms = ms;
  }
  return best_ms;
}

void Run(int threads) {
  // 0 (or a non-numeric argv) means hardware concurrency, matching
  // EvaluationRequest::num_threads semantics.
  if (threads <= 0) threads = ThreadPool::DefaultThreads();
  std::printf(
      "parallel Advise on the Table-3 fanout-sweep schemas "
      "(serial vs %d-thread pool; %d hardware thread(s))\n\n",
      threads, ThreadPool::DefaultThreads());

  TextTable table({"fanout", "cells", "strategies", "serial ms",
                   "pooled ms", "speedup"});
  std::string json = "{\n  \"bench\": \"parallel_advise\",\n";
  json += "  \"threads\": " + std::to_string(threads) + ",\n";
  json += "  \"hardware_threads\": " +
          std::to_string(ThreadPool::DefaultThreads()) + ",\n";
  json += "  \"schemas\": [\n";

  const std::vector<uint64_t> fanouts = {2, 4, 32};
  for (size_t i = 0; i < fanouts.size(); ++i) {
    const uint64_t fanout = fanouts[i];
    auto schema = bench::ToySchema(fanout);
    const ClusteringAdvisor advisor(schema);
    const Workload mu = Workload::Uniform(advisor.Lattice());
    const auto plan = advisor.Plan(EvaluationRequest(mu));
    SNAKES_CHECK(plan.ok()) << plan.status().ToString();
    const size_t strategies = plan->strategies.size();
    // The 1M-cell grid takes ~1s per Advise; one rep is representative
    // there, smaller grids get best-of-3.
    const int reps = fanout >= 32 ? 1 : 3;

    std::fprintf(stderr, "fanout %llu: %llu cells, %zu strategies...\n",
                 static_cast<unsigned long long>(fanout),
                 static_cast<unsigned long long>(schema->num_cells()),
                 strategies);
    const double serial_ms = AdviseWallMs(advisor, mu, 1, reps);
    const double pooled_ms = AdviseWallMs(advisor, mu, threads, reps);
    const double speedup = pooled_ms > 0.0 ? serial_ms / pooled_ms : 0.0;

    table.AddRow({std::to_string(fanout),
                  std::to_string(schema->num_cells()),
                  std::to_string(strategies), FormatDouble(serial_ms, 2),
                  FormatDouble(pooled_ms, 2), FormatDouble(speedup, 2)});
    json += "    {\"fanout\": " + std::to_string(fanout) +
            ", \"cells\": " + std::to_string(schema->num_cells()) +
            ", \"strategies\": " + std::to_string(strategies) +
            ", \"serial_ms\": " + FormatDouble(serial_ms, 3) +
            ", \"pooled_ms\": " + FormatDouble(pooled_ms, 3) +
            ", \"speedup\": " + FormatDouble(speedup, 3) + "}";
    json += i + 1 < fanouts.size() ? ",\n" : "\n";
  }
  json += "  ],\n";

  // One instrumented pooled Advise on the largest schema, embedded as a
  // work profile next to the wall times (queue-wait vs compute, DP cell
  // relaxations, strategies evaluated) — kept out of the timed reps so the
  // timings stay backend-free.
  {
    auto schema = bench::ToySchema(fanouts.back());
    const ClusteringAdvisor advisor(schema);
    const Workload mu = Workload::Uniform(advisor.Lattice());
    MetricsRegistry metrics;
    EvaluationRequest request(mu);
    request.num_threads = threads;
    request.obs = ObsSink{&metrics, nullptr};
    const auto rec = advisor.Advise(request);
    SNAKES_CHECK(rec.ok()) << rec.status().ToString();
    json += "  \"metrics\": " + metrics.Snapshot().ToJson(/*pretty=*/false) +
            "\n";
  }
  json += "}\n";

  std::printf("%s\n", table.Render().c_str());
  const char* path = "BENCH_parallel_advise.json";
  std::ofstream out(path);
  out << json;
  SNAKES_CHECK(out.good()) << "failed to write " << path;
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace snakes

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  snakes::Run(threads);
  return 0;
}
