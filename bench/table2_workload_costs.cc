// Reproduces Table 2: expected per-query cost of P1, P2, Hilbert and the two
// snaked paths over the three toy workloads of Section 2:
//   1. all query classes equally likely;
//   2. classes (0,1), (0,2), (1,1) excluded, the rest equally likely;
//   3. only (0,0), (0,1), (0,2), (1,2), equally likely.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "cost/workload_cost.h"
#include "util/text_table.h"

namespace snakes {
namespace {

void Run() {
  auto schema = bench::ToySchema();
  const QueryClassLattice lattice(*schema);
  const LatticePath p1 = bench::P1(lattice);
  const LatticePath p2 = bench::P2(lattice);
  auto hilbert = bench::PaperHilbert(schema);
  const ClassCostTable hilbert_costs = MeasureClassCosts(*hilbert);

  std::printf("Table 2: Expected Workload Cost (toy 4x4 warehouse)\n\n");
  TextTable table({"Workload", "P1", "P2", "Hd2", "~P1", "~P2"});
  const std::vector<Workload> workloads = bench::ToyWorkloads(lattice);
  for (size_t i = 0; i < workloads.size(); ++i) {
    const Workload& mu = workloads[i];
    table.AddRow({std::to_string(i + 1),
                  FormatDouble(ExpectedPathCost(mu, p1), 4),
                  FormatDouble(ExpectedPathCost(mu, p2), 4),
                  FormatDouble(ExpectedCost(mu, hilbert_costs), 4),
                  FormatDouble(ExpectedSnakedPathCost(mu, p1), 4),
                  FormatDouble(ExpectedSnakedPathCost(mu, p2), 4)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "paper reference (as fractions): w1 17/9 15/9 49/36 14/9 25/18;\n"
      "w2 13/6 11/6 31/24 21/12 9/6; w3 1 5/4 3/2 1 9/8. The ~P2 entries\n"
      "for w1/w2 inherit the Table-1 (2,0) correction: 49/36 and 35/24.\n");
}

}  // namespace
}  // namespace snakes

int main() {
  snakes::Run();
  return 0;
}
