// google-benchmark microbenchmarks backing the Section-4 complexity claims:
// the DP runs in time linear in the lattice size (and quadratic in the
// number of dimensions), and is invariant to the grid's physical size
// (fanouts only enter as multiplications).

#include <benchmark/benchmark.h>

#include <vector>

#include "lattice/workload.h"
#include "path/dp2d.h"
#include "path/dpkd.h"
#include "util/rng.h"

namespace snakes {
namespace {

// 2-D lattices of growing depth: lattice size (n+1)^2.
void BM_OptimalPath2D(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto lat = QueryClassLattice::FromFanouts(
                       {std::vector<double>(static_cast<size_t>(n), 2.0),
                        std::vector<double>(static_cast<size_t>(n), 2.0)})
                       .value();
  Rng rng(42);
  const Workload mu = Workload::Random(lat, &rng);
  for (auto _ : state) {
    auto result = FindOptimalLatticePath2D(mu);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(static_cast<int64_t>(lat.size()));
}
BENCHMARK(BM_OptimalPath2D)->RangeMultiplier(2)->Range(4, 64)->Complexity();

// Same lattice sizes through the k-D engine.
void BM_OptimalPathKD2(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto lat = QueryClassLattice::FromFanouts(
                       {std::vector<double>(static_cast<size_t>(n), 2.0),
                        std::vector<double>(static_cast<size_t>(n), 2.0)})
                       .value();
  Rng rng(42);
  const Workload mu = Workload::Random(lat, &rng);
  for (auto _ : state) {
    auto result = FindOptimalLatticePath(mu);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(static_cast<int64_t>(lat.size()));
}
BENCHMARK(BM_OptimalPathKD2)->RangeMultiplier(2)->Range(4, 64)->Complexity();

// Growing dimension count with ~constant lattice size (2 levels per dim):
// exposes the O(k^2) factor.
void BM_OptimalPathDims(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  std::vector<std::vector<double>> fanouts(
      static_cast<size_t>(k), std::vector<double>{2.0, 2.0});
  const auto lat = QueryClassLattice::FromFanouts(fanouts).value();
  Rng rng(7);
  const Workload mu = Workload::Random(lat, &rng);
  for (auto _ : state) {
    auto result = FindOptimalLatticePath(mu);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_OptimalPathDims)->DenseRange(2, 6);

// The DP cost is independent of the fanout magnitude (grid can be huge).
void BM_OptimalPathFanout(benchmark::State& state) {
  const double f = static_cast<double>(state.range(0));
  const auto lat =
      QueryClassLattice::FromFanouts({{f, f, f}, {f, f, f}}).value();
  Rng rng(9);
  const Workload mu = Workload::Random(lat, &rng);
  for (auto _ : state) {
    auto result = FindOptimalLatticePath(mu);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_OptimalPathFanout)->Arg(2)->Arg(32)->Arg(1024);

}  // namespace
}  // namespace snakes

BENCHMARK_MAIN();
