// Overhead guard for the always-on telemetry layer: the flight recorder,
// SLO windows, and request-context plumbing must stay under 2% of the
// service's mixed-request path.
//
// Two measurements:
//
//   1. The telemetry cost of ONE request, measured directly: everything the
//      RequestGuard adds — a thread-local RequestContext scope, two
//      steady-clock reads, a request-id fetch_add, a FlightRecorder::Record
//      (seqlock claim + 9 relaxed stores), an SloWindow::Record (relaxed
//      adds + histogram bump), and two metrics-counter increments — run in
//      a tight loop over live sinks. This is an overestimate of the real
//      increment: the loop's records all contend on the same cache lines,
//      where real requests spread theirs out in time.
//
//   2. The service's mixed-request wall time per request: the same batched
//      query/measure/ingest/advise/end-epoch mix service_sim's phase 1
//      drives (Submit* onto the request pool, drained in chunks), against
//      a 4096-cell tenant — tiny next to a real warehouse, so per-request
//      compute is still understated and the ratio overstated. Recorder
//      enabled, as it always is; best-of-3.
//
// The guard SNAKES_CHECKs (per-request telemetry ns) / (per-request wall
// ns) under 2% and writes BENCH_telemetry.json.
//
//   $ ./micro_telemetry

#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "hierarchy/star_schema.h"
#include "lattice/grid_query.h"
#include "lattice/workload.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/slo_window.h"
#include "service/service.h"
#include "storage/fact_table.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/text_table.h"

namespace snakes {
namespace {

using Clock = std::chrono::steady_clock;

/// Cost of one request's worth of telemetry, measured over live sinks.
double TelemetryNsPerRequest() {
  FlightRecorder recorder(FlightRecorder::kDefaultCapacity);
  SloWindow slo;
  MetricsRegistry metrics;
  Counter* completed = metrics.GetCounter("bench.requests.completed");
  Counter* errors = metrics.GetCounter("bench.requests.errors");
  std::atomic<uint64_t> next_id{1};

  constexpr uint64_t kIters = 2'000'000;
  const auto bench_start = Clock::now();
  for (uint64_t i = 0; i < kIters; ++i) {
    // Everything AdvisorService::RequestGuard adds around a request.
    RequestContext ctx;
    ctx.id = next_id.fetch_add(1, std::memory_order_relaxed);
    ctx.verb = RequestVerb::kQuery;
    RequestContextScope scope(&ctx);
    const auto start = Clock::now();
    ctx.start_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            start.time_since_epoch())
            .count());
    ctx.enqueue_ns = ctx.start_ns;
    ctx.finish_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch())
            .count());
    RequestRecord rec;
    rec.id = ctx.id;
    rec.tenant = 0;
    rec.verb = ctx.verb;
    rec.status = ctx.status;
    rec.enqueue_ns = ctx.enqueue_ns;
    rec.start_ns = ctx.start_ns;
    rec.finish_ns = ctx.finish_ns;
    rec.pages = ctx.pages;
    rec.partitions_pruned = ctx.partitions_pruned;
    recorder.Record(rec);
    slo.Record(rec.verb, rec.compute_ns(), /*error=*/false);
    completed->Inc();
    if (false) errors->Inc();
  }
  const double ns =
      std::chrono::duration<double, std::nano>(Clock::now() - bench_start)
          .count();
  SNAKES_CHECK(recorder.recorded() == kIters);
  return ns / static_cast<double>(kIters);
}

std::shared_ptr<const FactTable> RandomFacts(
    const std::shared_ptr<const StarSchema>& schema, Rng* rng) {
  auto facts = std::make_shared<FactTable>(schema);
  for (CellId id = 0; id < schema->num_cells(); ++id) {
    const uint64_t records = 2 + rng->Below(3);
    for (uint64_t r = 0; r < records; ++r) {
      facts->AddRecord(schema->Unflatten(id), rng->NextDouble());
    }
  }
  return facts;
}

/// Wall ns per request of the batched mixed workload (service_sim's phase 1
/// shape) against a live service (recorder enabled — it always is).
/// Best-of-`reps`.
double RequestNsMixed(int reps, uint64_t* out_requests) {
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Symmetric(2, 4, 4).ValueOrDie());  // 256x256 = 65536 cells
  const QueryClassLattice lat(*schema);
  double best_ns = 0.0;
  constexpr int kRequests = 4000;
  for (int rep = 0; rep < reps; ++rep) {
    ServiceConfig config;
    // One worker so wall/requests equals the true per-request cost (more
    // workers shrink wall time without changing what one request costs).
    config.request_threads = 1;
    config.recluster_on_epoch_close = false;
    config.recluster.strategies = {"row-major"};
    config.storage = StorageConfig{512, 60};
    AdvisorService service(config);
    Rng rng(1999 + static_cast<uint64_t>(rep));
    TenantSpec spec;
    spec.name = "t";
    spec.schema = schema;
    spec.facts = RandomFacts(schema, &rng);
    const TenantId id = service.RegisterTenant(std::move(spec)).ValueOrDie();

    const Workload sampler = Workload::Uniform(lat);
    std::vector<std::future<Status>> ingests;
    std::vector<std::future<Result<QueryAnswer>>> queries;
    std::vector<std::future<Result<QueryIo>>> measures;
    std::vector<std::future<Result<Recommendation>>> advises;
    const auto drain = [&]() {
      for (auto& f : ingests) SNAKES_CHECK(f.get().ok());
      for (auto& f : queries) SNAKES_CHECK(f.get().ok());
      for (auto& f : measures) SNAKES_CHECK(f.get().ok());
      for (auto& f : advises) SNAKES_CHECK(f.get().ok());
      ingests.clear();
      queries.clear();
      measures.clear();
      advises.clear();
    };
    int ingested = 0;
    const auto start = Clock::now();
    for (int r = 0; r < kRequests; ++r) {
      const GridQuery query =
          SampleQuery(*schema, sampler.Sample(&rng), &rng);
      const double dice = rng.NextDouble();
      if (dice < 0.60) {
        queries.push_back(service.SubmitQuery(id, query));
      } else if (dice < 0.75) {
        measures.push_back(service.SubmitMeasure(id, query));
      } else if (dice < 0.93) {
        ingests.push_back(service.SubmitIngest(id, query));
        ++ingested;
      } else if (dice < 0.97 && ingested > 0) {
        (void)service.SubmitEndEpoch(id);
        ingested = 0;
      } else {
        advises.push_back(service.SubmitAdvise(id));
      }
      if (queries.size() + measures.size() + ingests.size() +
              advises.size() >=
          512) {
        drain();
      }
    }
    drain();
    const double ns =
        std::chrono::duration<double, std::nano>(Clock::now() - start)
            .count() /
        kRequests;
    service.Shutdown();
    if (rep == 0 || ns < best_ns) best_ns = ns;
  }
  *out_requests = kRequests;
  return best_ns;
}

void Run() {
  std::fprintf(stderr, "measuring per-request telemetry cost...\n");
  const double telemetry_ns = TelemetryNsPerRequest();
  std::fprintf(stderr, "measuring mixed-request service path...\n");
  uint64_t requests = 0;
  const double request_ns = RequestNsMixed(3, &requests);
  const double overhead_pct = 100.0 * telemetry_ns / request_ns;

  TextTable table({"metric", "value"});
  table.AddRow({"telemetry ns/request", FormatDouble(telemetry_ns, 1)});
  table.AddRow({"mixed request ns", FormatDouble(request_ns, 0)});
  table.AddRow({"overhead bound", FormatDouble(overhead_pct, 3) + "%"});
  std::printf("%s\n", table.Render().c_str());

  SNAKES_CHECK(overhead_pct < 2.0)
      << "telemetry bound " << overhead_pct << "% exceeds the 2% budget";

  std::string json = "{\n  \"bench\": \"telemetry_overhead\",\n";
  json += "  \"telemetry_ns_per_request\": " + FormatDouble(telemetry_ns, 2) +
          ",\n";
  json += "  \"mixed_request_ns\": " + FormatDouble(request_ns, 1) + ",\n";
  json += "  \"mixed_requests\": " + std::to_string(requests) + ",\n";
  json += "  \"overhead_bound_pct\": " + FormatDouble(overhead_pct, 4) + ",\n";
  json += "  \"budget_pct\": 2.0\n}\n";
  const char* path = "BENCH_telemetry.json";
  std::ofstream out(path);
  out << json;
  SNAKES_CHECK(out.good()) << "failed to write " << path;
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace snakes

int main() {
  snakes::Run();
  return 0;
}
