// Ablation for the Section-7 claim: "lattice path clusterings can be
// arbitrarily better than the Hilbert curve on some workloads, while more
// expensive on others". Sweeps binary 2-D schemas of growing depth and, for
// workload families (per-class points, ramps, uniform), reports the cost
// ratio Hilbert / best snaked lattice path and Hilbert / worst snaked path.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "cost/edge_model.h"
#include "cost/workload_cost.h"
#include "curves/hilbert.h"
#include "hierarchy/star_schema.h"
#include "lattice/workload.h"
#include "path/dpkd.h"
#include "path/lattice_path.h"
#include "util/logging.h"
#include "util/text_table.h"

namespace snakes {
namespace {

void Run() {
  std::printf(
      "Ablation: Hilbert vs snaked lattice paths across workloads\n\n");
  TextTable table({"n", "workload", "hilbert", "best snaked path",
                   "hilbert/best", "hilbert beats some path?"});
  for (int n : {2, 3, 4}) {
    auto schema = std::make_shared<StarSchema>(
        StarSchema::Symmetric(2, n, 2).ValueOrDie());
    const QueryClassLattice lat(*schema);
    auto hilbert = HilbertCurve::Make(schema, true).ValueOrDie();
    const ClassCostTable hcosts = MeasureClassCosts(*hilbert);
    const auto paths = EnumerateAllPaths(lat).ValueOrDie();

    struct Named {
      std::string name;
      Workload mu;
    };
    std::vector<Named> workloads;
    workloads.push_back({"uniform", Workload::Uniform(lat)});
    // Point workloads at the extreme classes.
    QueryClass col(2);
    col.set_level(0, n);
    workloads.push_back(
        {"point" + col.ToString(), Workload::Point(lat, col).ValueOrDie()});
    QueryClass mid(2);
    mid.set_level(0, n / 2);
    mid.set_level(1, (n + 1) / 2);
    workloads.push_back(
        {"point" + mid.ToString(), Workload::Point(lat, mid).ValueOrDie()});

    for (const Named& w : workloads) {
      const double hilbert_cost = ExpectedCost(w.mu, hcosts);
      double best = 1e300, worst = 0.0;
      for (const LatticePath& path : paths) {
        const double c = ExpectedSnakedPathCost(w.mu, path);
        best = std::min(best, c);
        worst = std::max(worst, c);
      }
      table.AddRow({std::to_string(n), w.name, FormatDouble(hilbert_cost, 3),
                    FormatDouble(best, 3),
                    FormatDouble(hilbert_cost / best, 3),
                    hilbert_cost < worst - 1e-12 ? "yes" : "no"});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "hilbert/best grows with n on skewed (point) workloads — lattice\n"
      "paths tuned to the workload beat the one-size-fits-all Hilbert by\n"
      "widening margins, while Hilbert stays ahead of the *worst* snaked\n"
      "path on most workloads (Theorem 2 says only that some snaked path\n"
      "is optimal, not all).\n");
}

}  // namespace
}  // namespace snakes

int main() {
  snakes::Run();
  return 0;
}
