// Walks through Example 3 and the Theorem-2 sandwich machinery end to end:
// a diagonal strategy's CV is stripped of diagonal edges (Lemma 4),
// minimalized, and recursively sandwiched into snaked-lattice-path CVs; on a
// sample of random workloads some leaf always costs no more than the
// original. Also prints the conclusion's Hilbert sandwich.

#include <algorithm>
#include <cstdio>

#include "cost/edge_model.h"
#include "curves/hilbert.h"
#include "cv/characteristic_vector.h"
#include "cv/consistency.h"
#include "cv/sandwich.h"
#include "cv/transform.h"
#include "hierarchy/star_schema.h"
#include "lattice/workload.h"
#include "util/logging.h"
#include "util/rng.h"

namespace snakes {
namespace {

void Run() {
  std::printf("Ablation (Theorem 2 / Example 3): the sandwich pipeline\n\n");
  std::vector<uint64_t> diag(9, 0);
  diag[0] = diag[4] = diag[8] = 4;  // d11 = d22 = d33 = 4
  const BinaryCV s_d =
      BinaryCV::Make(3, {20, 5, 1}, {21, 3, 1}, diag).ValueOrDie();
  std::printf("diagonal strategy S_d:        %s\n", s_d.ToString().c_str());

  const BinaryCV nondiag = EliminateDiagonals(s_d).ValueOrDie();
  std::printf("after Lemma 4 (no diagonals): %s  (paper: (24,9,5;21,3,1))\n",
              nondiag.ToString().c_str());

  const BinaryCV minimal = Minimalize(nondiag).ValueOrDie();
  std::printf("after minimalization:         %s  (paper: (27,8,3;21,3,1))\n\n",
              minimal.ToString().c_str());

  const auto pair = SandwichOnce(minimal).ValueOrDie();
  std::printf("one sandwich step: %s and %s\n", pair.first.ToString().c_str(),
              pair.second.ToString().c_str());

  const auto leaves = SandwichToSnakedPaths(minimal).ValueOrDie();
  std::printf("full recursion reaches %zu snaked-lattice-path CVs:\n",
              leaves.size());
  for (const BinaryCV& leaf : leaves) {
    std::printf("  %s  = snaked %s\n", leaf.ToString().c_str(),
                SnakedPathFromCV(leaf).ValueOrDie().ToString().c_str());
  }

  // The guarantee, sampled: min over leaves <= cost(S_d) on every workload.
  const auto lat =
      QueryClassLattice::FromFanouts({{2, 2, 2}, {2, 2, 2}}).value();
  Rng rng(1999);
  int holds = 0;
  const int trials = 10000;
  for (int t = 0; t < trials; ++t) {
    const Workload mu = Workload::Random(lat, &rng);
    double best = 1e300;
    for (const BinaryCV& leaf : leaves) {
      best = std::min(best, leaf.CostMu(mu));
    }
    holds += best <= s_d.CostMu(mu) + 1e-12;
  }
  std::printf(
      "\nsandwich guarantee (some snaked path <= S_d): %d/%d random "
      "workloads\n\n",
      holds, trials);

  // Hilbert sandwich (conclusions of the paper).
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Symmetric(2, 2, 2).ValueOrDie());
  auto hilbert = HilbertCurve::Make(schema, true).ValueOrDie();
  const BinaryCV hcv =
      BinaryCV::FromHistogram(MeasureEdgeHistogram(*hilbert)).ValueOrDie();
  const auto hleaves = SandwichToSnakedPaths(hcv).ValueOrDie();
  std::printf("Hilbert CV %s is sandwiched by:\n", hcv.ToString().c_str());
  for (const BinaryCV& leaf : hleaves) {
    std::printf("  %s  = snaked %s\n", leaf.ToString().c_str(),
                SnakedPathFromCV(leaf).ValueOrDie().ToString().c_str());
  }
}

}  // namespace
}  // namespace snakes

int main() {
  snakes::Run();
  return 0;
}
