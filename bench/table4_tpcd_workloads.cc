// Reproduces Table 4: expected I/O on the TPC-D LineItem warehouse for the
// optimal lattice path, its snaked version, and the best/worst of the six
// row-major orderings, across the 27 Section-6.2 workloads.
//
// Each cell prints "avg normalized blocks read (avg seeks per query)", as in
// the paper. The paper reports a selection of rows (1, 5, 7, 13, 25); we
// print all 27 and mark the paper's rows.
//
// Substrate note: the original experiments used TPC-D dbgen data; this
// binary uses the library's statistically equivalent generator (see
// src/tpcd/dbgen.h and DESIGN.md). Expect the same shape — snaked optimal
// lowest on seeks, order-of-magnitude gaps to the worst row-major — not the
// same decimals.

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "curves/path_order.h"
#include "curves/row_major.h"
#include "path/dpkd.h"
#include "storage/executor.h"
#include "storage/pager.h"
#include "tpcd/dbgen.h"
#include "tpcd/workloads.h"
#include "util/logging.h"
#include "util/text_table.h"

namespace snakes {
namespace {

struct MeasuredLayout {
  std::string name;
  std::vector<ClassIoStats> per_class;
};

MeasuredLayout MeasureLayout(std::shared_ptr<const Linearization> lin,
                             std::shared_ptr<const FactTable> facts) {
  auto layout = PackedLayout::Pack(std::move(lin), std::move(facts));
  SNAKES_CHECK(layout.ok()) << layout.status().ToString();
  const IoSimulator sim(*layout);
  return MeasuredLayout{layout->linearization().name(),
                        sim.MeasureAllClasses()};
}

std::string Cell(const WorkloadIoStats& io) {
  return FormatDouble(io.expected_normalized_blocks, 2) + " (" +
         FormatDouble(io.expected_seeks, 2) + ")";
}

void Run() {
  tpcd::Config config;
  std::fprintf(stderr, "generating ~%llu lineitems over %llu cells...\n",
               static_cast<unsigned long long>(4 * config.num_orders),
               static_cast<unsigned long long>(config.num_parts() * 10 * 84));
  const auto warehouse = tpcd::GenerateWarehouse(config).ValueOrDie();
  const QueryClassLattice lattice(*warehouse.schema);

  // Row-major baselines: pack and measure each of the 6 orders once.
  std::vector<MeasuredLayout> row_majors;
  for (auto& rm : AllRowMajorOrders(warehouse.schema)) {
    std::fprintf(stderr, "packing %s...\n", rm->name().c_str());
    row_majors.push_back(MeasureLayout(std::move(rm), warehouse.facts));
  }

  // Optimal-path layouts are cached by (steps, snaked) across workloads.
  std::map<std::string, MeasuredLayout> path_cache;
  auto measure_path = [&](const LatticePath& path,
                          bool snaked) -> const MeasuredLayout& {
    std::string key = snaked ? "s:" : "p:";
    for (int d : path.steps()) key += static_cast<char>('0' + d);
    auto it = path_cache.find(key);
    if (it == path_cache.end()) {
      auto order = MakePathOrder(warehouse.schema, path, snaked);
      SNAKES_CHECK(order.ok());
      it = path_cache
               .emplace(key, MeasureLayout(std::move(order).value(),
                                           warehouse.facts))
               .first;
    }
    return it->second;
  };

  std::printf(
      "Table 4: Avg normalized blocks read (avg seeks per query), TPC-D\n"
      "LineItem, %llu records; * marks the rows Table 4 of the paper "
      "prints\n\n",
      static_cast<unsigned long long>(warehouse.facts->total_records()));
  TextTable table({"Workload", "(ramps)", "opt path", "snaked opt",
                   "best row major", "worst row major"});
  for (int id = 1; id <= 27; ++id) {
    const Workload mu = tpcd::SectionSixWorkload(lattice, id).ValueOrDie();
    const auto dp = FindOptimalLatticePath(mu).ValueOrDie();
    const WorkloadIoStats opt_io =
        IoSimulator::Expect(mu, measure_path(dp.path, false).per_class);
    const WorkloadIoStats snaked_io =
        IoSimulator::Expect(mu, measure_path(dp.path, true).per_class);

    // Best/worst row-major, chosen per metric as the paper's table does
    // (the best ordering "varies depending on the workload").
    WorkloadIoStats best{1e300, 1e300}, worst{0.0, 0.0};
    for (const MeasuredLayout& rm : row_majors) {
      const WorkloadIoStats io = IoSimulator::Expect(mu, rm.per_class);
      best.expected_seeks = std::min(best.expected_seeks, io.expected_seeks);
      best.expected_normalized_blocks = std::min(
          best.expected_normalized_blocks, io.expected_normalized_blocks);
      worst.expected_seeks = std::max(worst.expected_seeks, io.expected_seeks);
      worst.expected_normalized_blocks = std::max(
          worst.expected_normalized_blocks, io.expected_normalized_blocks);
    }

    const bool paper_row =
        id == 1 || id == 5 || id == 7 || id == 13 || id == 25;
    table.AddRow({std::to_string(id) + (paper_row ? "*" : ""),
                  tpcd::DescribeWorkload(id), Cell(opt_io), Cell(snaked_io),
                  Cell(best), Cell(worst)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "paper reference rows (blocks (seeks)): 1: 1.53 (8.41) / 1.52 (7.71) "
      "/ 2.08 (10.85) / 5.28 (39.96); 5: 2.22 (5.30) / 2.19 (5.10) / 1.49 "
      "(6.60) / 3.98 (22.60); 7: 1.24 (4.08) / 1.25 (3.73) / 1.91 (5.53) / "
      "5.25 (52.08); 13: 1.70 (4.83) / 1.65 (4.75) / 1.68 (5.81) / 9.94 "
      "(40.98); 25: 1.74 (4.26) / 1.74 (3.83) / 1.74 (4.14) / 6.34 "
      "(31.67).\n");
}

}  // namespace
}  // namespace snakes

int main() {
  snakes::Run();
  return 0;
}
