// Reproduces Table 3: how the relative expected cost of the best strategy
// among {P1, P2, Hilbert} compares to the worst, as the per-level fanout of
// the toy schema grows (2, 4, 32). The paper reports the ratio
// best/worst as a percentage — smaller means a bigger win from choosing the
// right clustering.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "cost/workload_cost.h"
#include "util/text_table.h"

namespace snakes {
namespace {

void Run() {
  std::printf(
      "Table 3: Relative cost (best/worst among P1, P2, Hilbert) for "
      "varying fanouts\n\n");
  const std::vector<uint64_t> fanouts = {2, 4, 32};
  TextTable table({"Workload", "fanout=2", "fanout=4", "fanout=32"});
  // ratio[workload][fanout-index]
  std::vector<std::vector<double>> ratios(3);

  for (uint64_t fanout : fanouts) {
    auto schema = bench::ToySchema(fanout);
    const QueryClassLattice lattice(*schema);
    const LatticePath p1 = bench::P1(lattice);
    const LatticePath p2 = bench::P2(lattice);
    auto hilbert = bench::PaperHilbert(schema);
    std::fprintf(stderr, "measuring hilbert on %llu cells...\n",
                 static_cast<unsigned long long>(schema->num_cells()));
    const ClassCostTable hilbert_costs = MeasureClassCosts(*hilbert);

    const std::vector<Workload> workloads = bench::ToyWorkloads(lattice);
    for (size_t w = 0; w < workloads.size(); ++w) {
      const Workload& mu = workloads[w];
      const std::vector<double> costs = {
          ExpectedPathCost(mu, p1), ExpectedPathCost(mu, p2),
          ExpectedCost(mu, hilbert_costs)};
      const double best = *std::min_element(costs.begin(), costs.end());
      const double worst = *std::max_element(costs.begin(), costs.end());
      ratios[w].push_back(best / worst);
    }
  }
  for (size_t w = 0; w < 3; ++w) {
    std::vector<std::string> row{std::to_string(w + 1)};
    for (double r : ratios[w]) row.push_back(FormatPercent(r, 1));
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "paper reference: w1 72%% / 61%% / 52%%; w2 60%% / 42%% / 27%%;\n"
      "w3 67%% / 30%% / 0.7%%.\n");
}

}  // namespace
}  // namespace snakes

int main() {
  snakes::Run();
  return 0;
}
