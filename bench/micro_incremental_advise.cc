// Incremental re-advise payoff: after a small workload drift, re-advising
// through the memoized state must cost >= 5x fewer per-class cost
// evaluations than advising cold — while recommending bit-identically to a
// cold Advise on the drifted workload.
//
// Setup: the Table-4 LineItem schema (no fact table; the guard is about the
// analytic pipeline) and Section-6 workload 7. The cold advise populates
// the state's per-class cost memo; the drift then moves 10% of probability
// mass toward workload 21 (total variation <= 0.1) and the warm advise
// re-evaluates only classes never costed before. Because per-class costs
// are workload-independent integers and the weighted summation is re-run
// exactly, the warm recommendation must match a from-scratch Advise on the
// drifted workload bit for bit: same ranking, same expected-cost doubles,
// same DP paths. Writes BENCH_incremental_advise.json.
//
//   $ ./micro_incremental_advise

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/advisor.h"
#include "lattice/workload.h"
#include "lattice/workload_delta.h"
#include "tpcd/schema.h"
#include "tpcd/workloads.h"
#include "util/logging.h"
#include "util/text_table.h"

namespace snakes {
namespace {

using Clock = std::chrono::steady_clock;

void Run() {
  const tpcd::Config config;  // the paper's 200 x 10 x 84 grid
  const auto schema = tpcd::BuildSharedSchema(config).ValueOrDie();
  const QueryClassLattice lattice(*schema);
  const ClusteringAdvisor advisor(schema);

  const Workload base = tpcd::SectionSixWorkload(lattice, 7).ValueOrDie();
  const Workload target = tpcd::SectionSixWorkload(lattice, 21).ValueOrDie();

  // Drift 10% of the mass toward the target: total variation <= 0.1.
  std::vector<double> p(base.size());
  for (uint64_t i = 0; i < base.size(); ++i) {
    p[i] = 0.9 * base.probability_at(i) + 0.1 * target.probability_at(i);
  }
  const Workload drifted =
      Workload::FromDense(lattice, std::move(p), /*normalize=*/true)
          .ValueOrDie();
  const double tv = WorkloadDelta::Between(base, drifted)
                        .ValueOrDie()
                        .total_variation();
  SNAKES_CHECK(tv <= 0.1) << "drift perturbs " << tv << " of the mass";

  IncrementalAdvisorState state;

  auto start = Clock::now();
  const Recommendation cold_rec =
      advisor.AdviseIncremental(EvaluationRequest{base}, &state).ValueOrDie();
  const double cold_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  const uint64_t cold_evals = state.last_cost_evaluations;

  start = Clock::now();
  const Recommendation warm_rec =
      advisor.AdviseIncremental(EvaluationRequest{drifted}, &state)
          .ValueOrDie();
  const double warm_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  const uint64_t warm_evals = state.last_cost_evaluations;
  const uint64_t warm_hits = state.last_cost_hits;

  // The reference: a from-scratch Advise on the drifted workload.
  start = Clock::now();
  const Recommendation fresh_rec =
      advisor.Advise(EvaluationRequest{drifted}).ValueOrDie();
  const double fresh_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  const bool identical = BitIdenticalRecommendations(warm_rec, fresh_rec);

  const double ratio = static_cast<double>(cold_evals) /
                       static_cast<double>(warm_evals == 0 ? 1 : warm_evals);

  TextTable table({"advise", "cost evals", "cache hits", "ms", "best"});
  table.AddRow({"cold (workload 7)", std::to_string(cold_evals), "0",
                FormatDouble(cold_ms, 1), cold_rec.best().name});
  table.AddRow({"warm (10% drift)", std::to_string(warm_evals),
                std::to_string(warm_hits), FormatDouble(warm_ms, 1),
                warm_rec.best().name});
  table.AddRow({"fresh (reference)", std::to_string(cold_evals), "0",
                FormatDouble(fresh_ms, 1), fresh_rec.best().name});
  std::printf("%s\n", table.Render().c_str());
  std::printf("drift tv=%.4f; %llu cold vs %llu warm evaluations (%.0fx); "
              "warm == fresh: %s\n",
              tv, static_cast<unsigned long long>(cold_evals),
              static_cast<unsigned long long>(warm_evals), ratio,
              identical ? "bit-identical" : "DIVERGED");

  SNAKES_CHECK(identical)
      << "incremental re-advise diverged from the cold reference";
  SNAKES_CHECK(ratio >= 5.0)
      << "incremental re-advise only saves " << ratio
      << "x cost evaluations (need >= 5x)";

  std::string json = "{\n  \"bench\": \"incremental_advise\",\n";
  json += "  \"cells\": " + std::to_string(schema->num_cells()) + ",\n";
  json += "  \"classes\": " + std::to_string(lattice.size()) + ",\n";
  json += "  \"drift_total_variation\": " + FormatDouble(tv, 4) + ",\n";
  json += "  \"cold_cost_evaluations\": " + std::to_string(cold_evals) + ",\n";
  json += "  \"warm_cost_evaluations\": " + std::to_string(warm_evals) + ",\n";
  json += "  \"warm_cache_hits\": " + std::to_string(warm_hits) + ",\n";
  json += "  \"evaluation_ratio\": " + FormatDouble(ratio, 2) + ",\n";
  json += "  \"required_ratio\": 5.0,\n";
  json += "  \"cold_ms\": " + FormatDouble(cold_ms, 3) + ",\n";
  json += "  \"warm_ms\": " + FormatDouble(warm_ms, 3) + ",\n";
  json += "  \"fresh_ms\": " + FormatDouble(fresh_ms, 3) + ",\n";
  json += "  \"bit_identical\": ";
  json += identical ? "true" : "false";
  json += ",\n  \"best\": \"" + warm_rec.best().name + "\"\n}\n";
  const char* path = "BENCH_incremental_advise.json";
  std::ofstream out(path);
  out << json;
  SNAKES_CHECK(out.good()) << "failed to write " << path;
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace snakes

int main() {
  snakes::Run();
  return 0;
}
