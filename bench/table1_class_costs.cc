// Reproduces Table 1: average query-class cost of the strategies P1, P2,
// Hilbert, snaked P1 and snaked P2 on the Section-2 toy warehouse (4x4 grid,
// complete binary 2-level hierarchies). Entries are exact fractions
// <total fragments over the class>/<queries in the class>, as in the paper.
//
// Note on one entry: the paper prints 12/4 for snaked-P2 at class (2,0); the
// edge-counting identity (Section 5.1's extended cost) forces 11/4 for every
// valid snaked P2 order, and Lemma 3's CV (4,1;8,2) agrees. See
// EXPERIMENTS.md.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "cost/edge_model.h"
#include "util/text_table.h"

namespace snakes {
namespace {

std::string Entry(const ClassCostTable& costs, const QueryClass& cls) {
  return std::to_string(costs.TotalFragments(cls)) + "/" +
         std::to_string(costs.NumQueries(cls));
}

void Run() {
  auto schema = bench::ToySchema();
  const QueryClassLattice lattice(*schema);
  const LatticePath p1 = bench::P1(lattice);
  const LatticePath p2 = bench::P2(lattice);

  struct Strategy {
    std::string name;
    ClassCostTable costs;
  };
  std::vector<Strategy> strategies;
  strategies.push_back(
      {"P1", MeasureClassCosts(
                 *PathOrder::Make(schema, p1, false).ValueOrDie())});
  strategies.push_back(
      {"P2", MeasureClassCosts(
                 *PathOrder::Make(schema, p2, false).ValueOrDie())});
  strategies.push_back({"Hd2", MeasureClassCosts(*bench::PaperHilbert(schema))});
  strategies.push_back(
      {"~P1", MeasureClassCosts(
                  *PathOrder::Make(schema, p1, true).ValueOrDie())});
  strategies.push_back(
      {"~P2", MeasureClassCosts(
                  *PathOrder::Make(schema, p2, true).ValueOrDie())});

  // The paper's row order.
  const std::vector<QueryClass> rows = {
      QueryClass{0, 0}, QueryClass{1, 1}, QueryClass{2, 2},
      QueryClass{1, 0}, QueryClass{0, 1}, QueryClass{2, 0},
      QueryClass{0, 2}, QueryClass{2, 1}, QueryClass{1, 2}};

  std::printf("Table 1: Average Query Class Cost (toy 4x4 warehouse)\n\n");
  TextTable table({"Class", "P1", "P2", "Hd2", "~P1", "~P2"});
  for (const QueryClass& cls : rows) {
    std::vector<std::string> row{cls.ToString()};
    for (const Strategy& s : strategies) row.push_back(Entry(s.costs, cls));
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "paper reference: identical except ~P2 at (2,0), where the paper's\n"
      "12/4 is internally inconsistent and the model forces 11/4.\n");
}

}  // namespace
}  // namespace snakes

int main() {
  snakes::Run();
  return 0;
}
