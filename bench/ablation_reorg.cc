// Ablation: how fast does the advisor's benefit erode as the warehouse
// grows past its last reorganization, and what does re-clustering buy back?
//
// The base file is the snaked optimal layout for 100% - x of the TPC-D
// LineItem data; the remaining x arrives later and lands in an append-only
// overflow region (src/storage/append.h). We report expected seeks under
// workload 7 for the degraded layout vs. a full re-cluster of all the data,
// for growing overflow fractions.

#include <cstdio>
#include <memory>
#include <vector>

#include "curves/path_order.h"
#include "path/snaked_dp.h"
#include "storage/append.h"
#include "storage/pager.h"
#include "tpcd/dbgen.h"
#include "tpcd/workloads.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/text_table.h"

namespace snakes {
namespace {

void Run() {
  tpcd::Config config;
  std::fprintf(stderr, "generating warehouse...\n");
  const auto warehouse = tpcd::GenerateWarehouse(config).ValueOrDie();
  const QueryClassLattice lattice(*warehouse.schema);
  const Workload mu = tpcd::SectionSixWorkload(lattice, 7).ValueOrDie();
  const auto dp = FindOptimalSnakedLatticePath(mu).ValueOrDie();

  // Re-clustered reference: the whole data set packed along the path.
  auto order = [&]() {
    return MakePathOrder(warehouse.schema, dp.path, true).ValueOrDie();
  };
  const auto full_layout =
      PackedLayout::Pack(order(), warehouse.facts).ValueOrDie();
  const double reclustered =
      IoSimulator::Expect(mu, IoSimulator(full_layout).MeasureAllClasses())
          .expected_seeks;

  std::printf(
      "Ablation: layout degradation from appended data (workload 7,\n"
      "expected seeks per query; re-clustered reference %.2f)\n\n",
      reclustered);
  TextTable table({"overflow share", "degraded seeks", "vs re-clustered"});
  for (const double share : {0.02, 0.05, 0.10, 0.20, 0.40}) {
    // Split the data: a base fact table holding 1-share of every cell's
    // records, the rest appended in random arrival order.
    auto base_facts = std::make_shared<FactTable>(warehouse.schema);
    std::vector<CellId> appended;
    Rng rng(31337);
    for (CellId id = 0; id < warehouse.facts->num_cells(); ++id) {
      const uint32_t count = warehouse.facts->count(id);
      for (uint32_t r = 0; r < count; ++r) {
        if (rng.Chance(share)) {
          appended.push_back(id);
        } else {
          base_facts->AddRecord(warehouse.schema->Unflatten(id), 1.0);
        }
      }
    }
    // Shuffle arrival order.
    for (size_t i = appended.size(); i > 1; --i) {
      std::swap(appended[i - 1], appended[rng.Below(i)]);
    }
    const auto base_layout =
        PackedLayout::Pack(order(), base_facts).ValueOrDie();
    OverflowLayout degraded(base_layout);
    for (const CellId id : appended) {
      degraded.Append(warehouse.schema->Unflatten(id), 1.0);
    }
    const double seeks = degraded.Expect(mu).expected_seeks;
    table.AddRow({FormatPercent(share, 0), FormatDouble(seeks, 2),
                  FormatDouble(seeks / reclustered, 2) + "x"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Seeks grow roughly linearly with the overflow share — the advisor's\n"
      "layout keeps paying for itself as long as reorganizations keep the\n"
      "overflow region modest.\n");
}

}  // namespace
}  // namespace snakes

int main() {
  snakes::Run();
  return 0;
}
